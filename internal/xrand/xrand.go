// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// Determinism matters here: every execution of the simulated shared-memory
// system is a pure function of (algorithm, scheduler, seed), so failures can
// be replayed exactly. The standard library's math/rand/v2 would work, but a
// local implementation keeps the module dependency-free, guarantees stable
// streams across Go releases, and supports splitting (hierarchical seeding)
// so that each process's local coin stream is independent of the scheduler's
// stream.
//
// The core generator is xoshiro256** seeded through splitmix64, the
// construction recommended by its authors.
package xrand

import "math/bits"

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from the given seed. Distinct seeds give
// (statistically) independent streams.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed reinitializes the Source in place from seed.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	s.s0 = splitmix64(&sm)
	s.s1 = splitmix64(&sm)
	s.s2 = splitmix64(&sm)
	s.s3 = splitmix64(&sm)
	// xoshiro requires a nonzero state; splitmix64 only yields all-zero
	// output with negligible probability, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
}

// splitmix64 advances *x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Split derives a new, statistically independent Source from this one using
// the stream index i. Splitting the same Source state with distinct indices
// yields distinct streams; the parent stream is not advanced.
func (s *Source) Split(i uint64) *Source {
	var child Source
	s.SplitInto(&child, i)
	return &child
}

// SplitInto reinitializes dst in place with the child stream Split(i) would
// return, without allocating. It is the reset-path form of Split: a reusable
// engine re-derives its per-process streams into preallocated Sources on
// every trial, and the two must agree bit for bit, so both go through this
// one derivation.
func (s *Source) SplitInto(dst *Source, i uint64) {
	// Mix the full parent state with the index through splitmix64 so that
	// children of different parents, and different children of one parent,
	// all diverge.
	seed := s.s0 ^ bits.RotateLeft64(s.s1, 13) ^ bits.RotateLeft64(s.s2, 29) ^ bits.RotateLeft64(s.s3, 43)
	seed ^= 0xd1b54a32d192ed03 * (i + 1)
	dst.Reseed(seed)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method.
func (s *Source) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability num/den. Probabilities are passed
// as exact rationals because the algorithms in this module use write
// probabilities of the form 2^k/n, and rounding through float64 would bias
// the very quantity (agreement probability) the experiments measure.
// Bernoulli panics if den == 0; num >= den always returns true.
func (s *Source) Bernoulli(num, den uint64) bool {
	if den == 0 {
		panic("xrand: Bernoulli with zero denominator")
	}
	if num >= den {
		return true
	}
	if num == 0 {
		return false
	}
	return s.boundedUint64(den) < num
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs uniformly in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
