package xrand

import "math"

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using the
// Box–Muller transform. The noisy scheduler of Aspnes's "Fast deterministic
// consensus in a noisy environment" model perturbs step times with Gaussian
// jitter; this is the only consumer of real-valued randomness in the module.
func (s *Source) NormFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue // avoid log(0)
		}
		v := s.Float64()
		r := math.Sqrt(-2 * math.Log(u))
		return r * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(num/den) process, i.e. a Geometric(p) variate supported on
// {0, 1, 2, ...}. It panics if num == 0 (the wait would be infinite) or
// den == 0.
func (s *Source) Geometric(num, den uint64) int {
	if num == 0 {
		panic("xrand: Geometric with zero success probability")
	}
	n := 0
	for !s.Bernoulli(num, den) {
		n++
	}
	return n
}
