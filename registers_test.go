package modcon

import (
	"errors"
	"testing"
)

// TestWithRegistersModels: the default is Atomic, an explicit model is
// honored, and models a backend cannot implement are typed configuration
// errors.
func TestWithRegistersModels(t *testing.T) {
	mk := func() (*Registers, Object) {
		file := NewRegisters()
		r, err := NewRatifier(file, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return file, r
	}

	// Atomic spelled out is the same as the default.
	file, r := mk()
	if _, err := Run(r,
		WithRegisters(file, Atomic), WithN(2), WithInputs(1),
		WithScheduler(NewRoundRobin()), WithSeed(1)); err != nil {
		t.Fatalf("explicit Atomic: %v", err)
	}

	// Regular runs on both backends.
	file, r = mk()
	if _, err := Run(r,
		WithRegisters(file, Regular), WithN(2), WithInputs(1),
		WithScheduler(NewStaleReadAttack()), WithSeed(1)); err != nil {
		t.Fatalf("Regular on sim: %v", err)
	}
	file, r = mk()
	if _, err := Run(r,
		WithBackend(Live), WithRegisters(file, Regular), WithN(2), WithInputs(1),
		WithSeed(1)); err != nil {
		t.Fatalf("Regular on live: %v", err)
	}

	// Interposed is sim-only: live rejects it with the unsupported sentinel.
	file, r = mk()
	if _, err := Run(r,
		WithRegisters(file, Interposed), WithN(2), WithInputs(1),
		WithScheduler(NewAdaptiveSpoiler()), WithSeed(1)); err != nil {
		t.Fatalf("Interposed on sim: %v", err)
	}
	file, r = mk()
	_, err := Run(r,
		WithBackend(Live), WithRegisters(file, Interposed), WithN(2), WithInputs(1),
		WithSeed(1))
	if !errors.Is(err, ErrOptionUnsupported) {
		t.Errorf("Interposed on live: err = %v, want ErrOptionUnsupported", err)
	}

	// A garbage model is a bad option, not silent atomic behavior.
	file, r = mk()
	_, err = Run(r,
		WithRegisters(file, RegisterModel(99)), WithN(2), WithInputs(1),
		WithScheduler(NewRoundRobin()))
	if !errors.Is(err, ErrBadOption) {
		t.Errorf("unknown model: err = %v, want ErrBadOption", err)
	}
}

// TestRegularRegistersStaleRead is the public-API form of the separation
// witness: under the stale-read attack a Regular register may hand a reader
// the pre-write value for some seed, while Atomic always returns the new
// value under the identical schedule.
func TestRegularRegistersStaleRead(t *testing.T) {
	run := func(model RegisterModel, seed uint64) Value {
		file := NewRegisters()
		r := file.Alloc1("x")
		file.Init(r, 5)
		res, err := Simulate(2, file, NewStaleReadAttack(), seed, func(e Env) Value {
			if e.PID() == 0 {
				return e.Read(r)
			}
			e.Write(r, 9)
			return 0
		}, RunConfig{Registers: model})
		if err != nil {
			t.Fatalf("%v seed %d: %v", model, seed, err)
		}
		return res.Outputs[0]
	}

	sawStale := false
	for seed := uint64(0); seed < 64; seed++ {
		if got := run(Atomic, seed); got != 9 {
			t.Fatalf("atomic read = %s, want 9 (seed %d)", got, seed)
		}
		if got := run(Regular, seed); got == 5 {
			sawStale = true
		} else if got != 9 {
			t.Fatalf("regular read = %s, want 5 or 9 (seed %d)", got, seed)
		}
	}
	if !sawStale {
		t.Error("no seed in [0,64) returned the stale value through the public API")
	}
}

// TestConsensusSolveRegularRegisters: the full consensus stack accepts the
// model through RunConfig and stays safe under it.
func TestConsensusSolveRegularRegisters(t *testing.T) {
	cons, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cons.Solve([]Value{0, 1, 1, 0}, NewStaleReadAttack(), 3,
		RunConfig{Registers: Regular})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 0 && out.Value != 1 {
		t.Fatalf("decided %s, want a valid input", out.Value)
	}
}

// TestRegisterModelStrings pins the flag/manifest spellings.
func TestRegisterModelStrings(t *testing.T) {
	for model, want := range map[RegisterModel]string{
		Atomic: "atomic", Regular: "regular", Interposed: "interposed",
	} {
		if got := model.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(model), got, want)
		}
	}
}
