package modcon

import "testing"

// FuzzSolve runs full consensus executions with fuzzed sizes, seeds, input
// patterns and adversaries. Solve verifies agreement and validity
// internally, so any safety bug surfaces as an error.
func FuzzSolve(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint64(1), uint8(0), uint16(0b0101))
	f.Add(uint8(7), uint8(5), uint64(99), uint8(3), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint8, seed uint64, advRaw uint8, pattern uint16) {
		n := int(nRaw)%8 + 1
		m := int(mRaw)%6 + 2
		cons, err := New(n, m)
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]Value, n)
		for i := range inputs {
			inputs[i] = Value((int(pattern>>uint(i%16)) + i) % m)
		}
		var s Scheduler
		switch advRaw % 5 {
		case 0:
			s = NewRoundRobin()
		case 1:
			s = NewUniformRandom()
		case 2:
			s = NewLaggard()
		case 3:
			s = NewFirstMoverAttack()
		default:
			s = NewEagerWriteAttack()
		}
		out, err := cons.Solve(inputs, s, seed)
		if err != nil {
			t.Fatalf("n=%d m=%d adv=%d: %v", n, m, advRaw%5, err)
		}
		for pid, d := range out.Decided {
			if !d {
				t.Fatalf("pid %d undecided", pid)
			}
		}
	})
}
