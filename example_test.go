package modcon_test

import (
	"context"
	"fmt"
	"log"

	"github.com/modular-consensus/modcon"
)

// Solve binary consensus among four processes with split inputs under a
// fixed round-robin schedule. Executions are deterministic functions of
// (spec, scheduler, seed), so the decided value is reproducible.
func ExampleConsensus_Solve() {
	cons, err := modcon.NewBinary(4)
	if err != nil {
		log.Fatal(err)
	}
	out, err := cons.Solve([]modcon.Value{0, 1, 0, 1}, modcon.NewRoundRobin(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decided:", out.Value)
	fmt.Println("everyone agrees:", out.Outputs[0] == out.Outputs[3])
	// Output:
	// decided: 0
	// everyone agrees: true
}

// Unanimous inputs take the fast path (§4.1.1): both fast-path ratifiers
// accept and no conciliator is ever touched, so individual work is constant
// in n.
func ExampleConsensus_Solve_fastPath() {
	cons, err := modcon.NewBinary(64)
	if err != nil {
		log.Fatal(err)
	}
	out, err := cons.Solve([]modcon.Value{1}, modcon.NewRoundRobin(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decided:", out.Value)
	fmt.Println("stage:", out.Stage[0])
	fmt.Println("max individual work ≤ 8:", out.MaxWork() <= 8)
	// Output:
	// decided: 1
	// stage: 0
	// max individual work ≤ 8: true
}

// m-valued consensus with the Bollobás-optimal ratifier quorums: nine
// processes elect one of their pids.
func ExampleNew_leaderElection() {
	const n = 9
	cons, err := modcon.New(n, n, modcon.WithScheme(modcon.SchemePool))
	if err != nil {
		log.Fatal(err)
	}
	proposals := make([]modcon.Value, n)
	for pid := range proposals {
		proposals[pid] = modcon.Value(pid)
	}
	out, err := cons.Solve(proposals, modcon.NewUniformRandom(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("a single leader was elected:", !out.Value.IsNone())
	// Output:
	// a single leader was elected: true
}

// Run executes a single object (here a binary ratifier) through the
// functional-option API: processes, inputs, adversary, and seed are all
// options rather than a config struct.
func ExampleRun() {
	file := modcon.NewRegisters()
	r, err := modcon.NewRatifier(file, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	run, err := modcon.Run(r,
		modcon.WithRegisters(file),
		modcon.WithN(3),
		modcon.WithInputs(1), // one value broadcasts to every process
		modcon.WithScheduler(modcon.NewRoundRobin()),
		modcon.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	agreed := true
	for _, d := range run.Decisions {
		if !d.Decided || d.V != 1 {
			agreed = false
		}
	}
	fmt.Println("unanimous input ratified by all:", agreed)
	// Output:
	// unanimous input ratified by all: true
}

// Trials runs independent executions concurrently on a worker pool.
// Per-trial seeds derive from the root seed and results merge in trial
// order, so aggregates are identical at any worker count.
func ExampleTrials() {
	cons, err := modcon.NewBinary(4)
	if err != nil {
		log.Fatal(err)
	}
	agreedAll := 0
	_, err = modcon.Trials(8,
		func(ctx context.Context, t modcon.Trial) (*modcon.Outcome, error) {
			return cons.Solve([]modcon.Value{0, 1, 0, 1}, modcon.NewUniformRandom(),
				t.Seed, modcon.RunConfig{Context: ctx})
		},
		func(t modcon.Trial, out *modcon.Outcome, rep modcon.TrialReport) {
			if rep.Outcome == modcon.TrialOK && len(out.Outputs) == 4 {
				agreedAll++
			}
		},
		modcon.WithSeed(42), modcon.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trials completed safely:", agreedAll)
	// Output:
	// trials completed safely: 8
}

// Crash up to n-1 processes: the protocols are wait-free, so survivors
// still decide.
func ExampleConsensus_Solve_crashes() {
	cons, err := modcon.NewBinary(3)
	if err != nil {
		log.Fatal(err)
	}
	out, err := cons.Solve([]modcon.Value{0, 1, 1}, modcon.NewUniformRandom(), 5,
		modcon.RunConfig{CrashAfter: map[int]int{0: 2, 1: 3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("survivor decided:", out.Decided[2])
	// Output:
	// survivor decided: true
}
