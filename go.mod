module github.com/modular-consensus/modcon

go 1.23
