package modcon

import (
	"strings"
	"testing"
)

func TestCustomChainViaPublicAPI(t *testing.T) {
	// Assemble the paper's recipe by hand from exported objects and run it
	// with Simulate: conciliate, ratify, repeat, fall back to CIL.
	const n, m = 5, 3
	for seed := uint64(0); seed < 30; seed++ {
		file := NewRegisters()
		var objs []Object
		for i := 1; i <= 4; i++ {
			objs = append(objs, NewImpatientConciliator(file, n, i))
			r, err := NewRatifier(file, m, i)
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, r)
		}
		objs = append(objs, NewCILConsensus(file, n, 0))
		chain := Compose(objs...)

		inputs := make([]Value, n)
		for i := range inputs {
			inputs[i] = Value((i + int(seed)) % m)
		}
		res, err := Simulate(n, file, NewUniformRandom(), seed, func(e Env) Value {
			d := chain.Invoke(e, inputs[e.PID()])
			if !d.Decided {
				t.Errorf("pid %d fell off a chain ending in consensus", e.PID())
			}
			return d.V
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckConsensus(inputs, res.Outputs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAdoptCommitViaPublicAPI(t *testing.T) {
	const n = 4
	file := NewRegisters()
	ac := NewAdoptCommit(file, 2, 1)
	statuses := make([]AdoptCommitStatus, n)
	values := make([]Value, n)
	res, err := Simulate(n, file, NewRoundRobin(), 1, func(e Env) Value {
		st, v := ac.Propose(e, 1)
		statuses[e.PID()] = st
		values[e.PID()] = v
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := range res.Outputs {
		if statuses[pid] != Commit || values[pid] != 1 {
			t.Fatalf("pid %d: (%s, %s)", pid, statuses[pid], values[pid])
		}
	}
}

func TestCoinConciliatorViaPublicAPI(t *testing.T) {
	const n = 3
	for seed := uint64(0); seed < 10; seed++ {
		file := NewRegisters()
		c := NewCoinConciliator(file, n, 1)
		inputs := []Value{0, 1, 0}
		res, err := Simulate(n, file, NewUniformRandom(), seed, func(e Env) Value {
			return c.Invoke(e, inputs[e.PID()]).V
		})
		if err != nil {
			t.Fatal(err)
		}
		for pid, v := range res.Outputs {
			if v != 0 && v != 1 {
				t.Fatalf("pid %d output %s", pid, v)
			}
		}
	}
}

func TestConstantRateConciliatorViaPublicAPI(t *testing.T) {
	file := NewRegisters()
	c := NewConstantRateConciliator(file, 8, 1)
	res, err := Simulate(1, file, NewRoundRobin(), 3, func(e Env) Value {
		return c.Invoke(e, 5).V
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 5 {
		t.Fatalf("output %s", res.Outputs[0])
	}
}

func TestNewRatifierValidation(t *testing.T) {
	file := NewRegisters()
	if _, err := NewRatifier(file, 1, 0); err == nil || !strings.Contains(err.Error(), "m ≥ 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestSimulateTraceAndCrash(t *testing.T) {
	file := NewRegisters()
	c := NewImpatientConciliator(file, 2, 1)
	res, err := Simulate(2, file, NewRoundRobin(), 2, func(e Env) Value {
		return c.Invoke(e, Value(e.PID())).V
	}, RunConfig{Traced: true, CrashAfter: map[int]int{0: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || res.Halted[0] {
		t.Fatalf("crash bookkeeping: %+v", res)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("trace missing")
	}
}

func TestSimulateRejectsTwoRunConfigs(t *testing.T) {
	file := NewRegisters()
	_, err := Simulate(1, file, NewRoundRobin(), 1, func(e Env) Value { return 0 },
		RunConfig{}, RunConfig{})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestCheckConsensusHelper(t *testing.T) {
	if err := CheckConsensus([]Value{0, 1}, []Value{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := CheckConsensus([]Value{0, 1}, []Value{0, 1}); err == nil {
		t.Fatal("expected disagreement error")
	}
}

func TestSetAgreementViaPublicAPI(t *testing.T) {
	const n, m, k = 6, 6, 2
	file := NewRegisters()
	sa, err := NewSetAgreement(file, n, m, k)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Value, n)
	for i := range inputs {
		inputs[i] = Value(i)
	}
	res, err := Simulate(n, file, NewUniformRandom(), 5, func(e Env) Value {
		return sa.Run(e, inputs[e.PID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Value]bool)
	for _, v := range res.Outputs {
		seen[v] = true
	}
	if len(seen) > k {
		t.Fatalf("%d distinct outputs for k=%d: %v", len(seen), k, res.Outputs)
	}
}

func TestTestAndSetViaPublicAPI(t *testing.T) {
	const n = 5
	file := NewRegisters()
	ts, err := NewTestAndSet(file, n)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]TASOutcome, n)
	_, err = Simulate(n, file, NewUniformRandom(), 9, func(e Env) Value {
		outcomes[e.PID()] = ts.Invoke(e)
		return Value(outcomes[e.PID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, o := range outcomes {
		if o == TASWin {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("%d winners: %v", wins, outcomes)
	}
}
