package modcon

// Public-API tests for the workload plane: open-loop admission must not
// change sweep results, a recorded trace must replay bit-identically (and
// a tampered one must fail loudly), and the option conflicts must be
// actionable errors.

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
)

// workloadSolve is the canonical public flow: Consensus.Solve per trial.
func workloadSolve(t *testing.T, cons *Consensus) func(ctx context.Context, tr Trial) (*Outcome, error) {
	t.Helper()
	n := cons.N()
	return func(ctx context.Context, tr Trial) (*Outcome, error) {
		inputs := make([]Value, n)
		for p := range inputs {
			inputs[p] = Value((p + tr.Index) % 2)
		}
		return cons.Solve(inputs, NewUniformRandom(), tr.Seed, RunConfig{Context: ctx})
	}
}

// TestTrialsWorkloadAggregatesUnchanged: an open-loop sweep folds the same
// per-trial results as the closed-loop sweep, at any worker count.
func TestTrialsWorkloadAggregatesUnchanged(t *testing.T) {
	cons, err := NewBinary(6)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseWorkload("poisson:rate=100000")
	if err != nil {
		t.Fatal(err)
	}
	const trials = 24
	sweep := func(workers int, opts ...RunOption) []int {
		works := make([]int, trials)
		opts = append(opts, WithSeed(7), WithWorkers(workers))
		report, err := Trials(trials, workloadSolve(t, cons),
			func(tr Trial, out *Outcome, rep TrialReport) { works[tr.Index] = out.TotalWork },
			opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got := report.Count(TrialOK); got != trials {
			t.Fatalf("%d ok trials, want %d: %s", got, trials, report)
		}
		return works
	}
	closed := sweep(4)
	for _, workers := range []int{1, 4} {
		open := sweep(workers, WithWorkload(spec))
		if !reflect.DeepEqual(open, closed) {
			t.Fatalf("workers=%d: open-loop sweep diverged from closed-loop results", workers)
		}
	}
}

// TestTrialsTraceRecordReplay is the replay contract end to end at the
// public layer: record a trace, replay it from nothing but the trace, and
// the re-recorded artifact is byte-identical; tampering fails with
// ErrTraceDiverged.
func TestTrialsTraceRecordReplay(t *testing.T) {
	cons, err := NewBinary(5)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseWorkload("burst:rate=200000,on=1ms,off=1ms;serve:servers=2")
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20
	var trace WorkloadTrace
	if _, err := Trials(trials, workloadSolve(t, cons), nil,
		WithSeed(11), WithWorkers(4), WithWorkload(spec), WithTraceRecord(&trace)); err != nil {
		t.Fatal(err)
	}
	if !trace.Complete() || trace.Trials != trials || trace.Seed != 11 {
		t.Fatalf("recorded trace header off: %+v", trace)
	}

	// Replay with no spec, no seed — everything comes from the trace.
	if _, err := Trials(trials, workloadSolve(t, cons), nil,
		WithWorkers(2), WithTraceReplay(&trace)); err != nil {
		t.Fatalf("faithful replay failed: %v", err)
	}

	// Replay-and-rerecord through a fresh recording gives identical bytes.
	var again WorkloadTrace
	if _, err := Trials(trials, workloadSolve(t, cons), nil,
		WithSeed(11), WithWorkers(1), WithWorkload(spec), WithTraceRecord(&again)); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := trace.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := again.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-recorded trace is not byte-identical")
	}

	// The trace serves to saturation metrics without re-running anything.
	served, err := trace.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if served.Metrics.Trials != trials || served.Metrics.LatencyUs.N() != int64(trials) {
		t.Fatalf("served metrics off: %+v", served.Metrics)
	}

	// Tampering with a demand makes replay fail loudly.
	trace.Entries[3].Steps++
	_, err = Trials(trials, workloadSolve(t, cons), nil,
		WithWorkers(2), WithTraceReplay(&trace))
	if !errors.Is(err, ErrTraceDiverged) {
		t.Fatalf("tampered replay returned %v, want ErrTraceDiverged", err)
	}
}

// TestWorkloadOptionValidation pins the conflict and misuse errors.
func TestWorkloadOptionValidation(t *testing.T) {
	cons, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	run := workloadSolve(t, cons)
	spec, err := ParseWorkload("steady:rate=1000")
	if err != nil {
		t.Fatal(err)
	}
	var trace WorkloadTrace
	if _, err := Trials(4, run, nil, WithSeed(3), WithWorkload(spec), WithTraceRecord(&trace)); err != nil {
		t.Fatal(err)
	}

	for name, opts := range map[string][]RunOption{
		"record without workload": {WithTraceRecord(&WorkloadTrace{})},
		"replay plus workload":    {WithTraceReplay(&trace), WithWorkload(spec)},
		"replay plus record":      {WithTraceReplay(&trace), WithTraceRecord(&WorkloadTrace{})},
		"replay conflicting seed": {WithTraceReplay(&trace), WithSeed(99)},
	} {
		if _, err := Trials(4, run, nil, opts...); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: got %v, want ErrBadOption", name, err)
		}
	}
	if _, err := Trials(7, run, nil, WithTraceReplay(&trace)); !errors.Is(err, ErrBadOption) {
		t.Errorf("replay trial-count mismatch: got %v, want ErrBadOption", err)
	}
	partial := trace
	partial.Hi = 2
	if _, err := Trials(4, run, nil, WithTraceReplay(&partial)); !errors.Is(err, ErrBadOption) {
		t.Errorf("replay of shard slice: got %v, want ErrBadOption", err)
	}
	if err := TrialsStrict(4, run, nil, WithWorkload(spec)); !errors.Is(err, ErrOptionUnsupported) {
		t.Errorf("TrialsStrict with workload: got %v, want ErrOptionUnsupported", err)
	}
	if _, err := ParseWorkload("poisson:rate=-2"); !errors.Is(err, ErrBadOption) {
		t.Errorf("ParseWorkload on invalid spec: got %v, want ErrBadOption", err)
	}
	if s, err := ParseWorkload(""); err != nil || s != nil {
		t.Errorf("ParseWorkload(\"\") = %v, %v; want nil, nil", s, err)
	}
}
