package modcon

import (
	"time"

	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/harness"
)

// This file surfaces the fault plane (internal/fault) and the resilient
// trial engine's report types (internal/harness) as public API. Faults are
// backend-neutral: the same plan injects through the simulator's scheduler
// hooks and the live backend's runtime injection points, and an empty plan
// is bit-identical to a fault-free run.

// Fault plane types, re-exported from internal/fault.
type (
	// Fault is one fault specification: a kind, a target process (or
	// AllProcs), and the kind's parameters. Build them with CrashFault,
	// CrashOnRoundFault, StallFault, DelayFault, and LoseCoinFault.
	Fault = fault.Fault
	// FaultPlan is a typed set of faults carried through a run
	// configuration; build one with Faults or ParseFaults. A nil plan
	// means no faults.
	FaultPlan = fault.Plan
)

// AllProcs is the fault PID wildcard: the fault applies to every process.
const AllProcs = fault.AllProcs

// CrashFault crashes pid after its own operation count reaches after: the
// last operation takes effect, but the process never observes the result
// and performs no further operations (the paper's crash semantics). With
// after = 0 the process crashes before its first operation.
func CrashFault(pid, after int) Fault { return fault.Crash(pid, after) }

// CrashOnRoundFault crashes pid in global round r (1-based): at its first
// own operation whose 1-based global operation index is at least (r-1)*n+1.
func CrashOnRoundFault(pid, round int) Fault { return fault.CrashOnRound(pid, round) }

// StallFault freezes pid once its own operation count reaches after: the
// process is neither halted nor crashed — it holds its state and never
// takes another step. A stalled execution never finishes on its own, so
// stall faults require a context (WithContext, WithTrialDeadline, or
// RunConfig.Context); they are the canonical livelock for exercising the
// deadline watchdog.
func StallFault(pid, after int) Fault { return fault.Stall(pid, after) }

// DelayFault adds per-operation jitter to pid: each operation is followed
// by a uniform delay in [0, max]. It perturbs wall-clock interleavings
// (meaningful on the Live backend) without touching the step-count cost
// model.
func DelayFault(pid int, max time.Duration) Fault { return fault.Delay(pid, max) }

// LoseCoinFault makes each of pid's probabilistic writes fail with
// probability num/den on top of the write's own coin: the process's coin
// stream is consumed exactly as in a fault-free run, then the loss
// suppresses the write and reports it failed. Safe degradation — it can
// slow termination but never break agreement or validity.
func LoseCoinFault(pid int, num, den uint64) Fault { return fault.LoseCoin(pid, num, den) }

// Faults builds a plan from fault specifications.
func Faults(faults ...Fault) *FaultPlan { return fault.New(faults...) }

// ParseFaults parses the plan grammar, e.g.
// "crash:pid=0,after=5;stall:pid=*,after=0;losecoin:p=1/8;delay:max=200us".
// Keys are per kind (crash/stall: after; crashround: round; delay: max;
// losecoin: p as a rational "1/8" or decimal "0.125"); pid defaults to the
// "*" wildcard. Plan.String renders the same grammar back.
func ParseFaults(s string) (*FaultPlan, error) { return fault.Parse(s) }

// Resilient trial engine types, re-exported from the harness.
type (
	// TrialOutcome classifies one trial of a Trials sweep:
	// ok | violated | timeout | panicked | crashed-short | failed.
	TrialOutcome = harness.TrialOutcome
	// TrialReport is the per-trial record of a robust sweep.
	TrialReport = harness.TrialReport
	// SweepReport aggregates a robust sweep: per-outcome counts and
	// per-trial reports, partial but correct when the sweep stops early.
	SweepReport = harness.SweepReport
)

// Trial outcome values (see TrialOutcome).
const (
	TrialOK           = harness.OutcomeOK
	TrialViolated     = harness.OutcomeViolated
	TrialTimeout      = harness.OutcomeTimeout
	TrialPanicked     = harness.OutcomePanicked
	TrialCrashedShort = harness.OutcomeCrashedShort
	TrialFailed       = harness.OutcomeFailed
)

// ErrTrialDeadline is the cancellation cause the per-trial watchdog
// attaches when a trial outlives WithTrialDeadline; errors.Is identifies
// watchdog kills wherever they surface.
var ErrTrialDeadline = harness.ErrTrialDeadline
