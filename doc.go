// Package modcon is a from-scratch implementation of James Aspnes's
// "A Modular Approach to Shared-Memory Consensus, with Applications to the
// Probabilistic-Write Model" (PODC 2010).
//
// The paper decomposes randomized shared-memory consensus into two new
// classes of one-shot objects:
//
//   - Conciliators produce agreement with constant probability δ > 0 under
//     any allowed adversary, but never claim it.
//   - Ratifiers detect agreement deterministically: unanimous inputs force
//     everyone to decide, and any decision pins all other outputs.
//
// An alternating chain (R₋₁; R₀; C₁; R₁; C₂; R₂; …) of these objects is a
// full randomized consensus protocol whose expected cost is the sum of one
// conciliator and one ratifier — for the probabilistic-write model this
// gives O(log n) expected individual work and O(n log m) expected total
// work, with O(n) total work for binary consensus (matching the
// Attiya–Censor lower bound).
//
// # What is here
//
// The package exposes a small façade over the full implementation:
//
//   - New and NewBinary assemble the paper's consensus protocols over a
//     simulated asynchronous shared memory whose interleaving is chosen by
//     a pluggable adversary scheduler.
//   - The adversary portfolio (RoundRobin, UniformRandom, FirstMoverAttack,
//     Noisy, Priority, …) covers the adversary classes of §2.1.
//   - Objects (conciliators, ratifiers, weak shared coins, the CIL-style
//     bounded-space fallback) can be composed freely via the Object
//     interface and Compose.
//   - Run and RunProtocol execute a single object or hand-assembled chain
//     under functional options (WithN, WithInputs, WithScheduler, WithSeed,
//     WithContext, …); Trials fans independent executions out over a worker
//     pool with per-trial seeds derived from one root seed and an in-order
//     merge, so aggregates are identical at any worker count (see the
//     README's "Reproducibility" section).
//
// A quick taste (see examples/quickstart for the runnable version):
//
//	cons, _ := modcon.NewBinary(8)
//	out, _ := cons.Solve([]modcon.Value{0, 1, 0, 1, 1, 0, 1, 0},
//	    modcon.NewUniformRandom(), 42)
//	fmt.Println(out.Value) // every process decided this value
//
// The heavy machinery lives in internal packages: internal/sim (the
// scheduler-driven shared-memory runtime), internal/core (deciding objects,
// composition, protocol assembly), internal/conciliator, internal/ratifier,
// internal/quorum, internal/sharedcoin, internal/fallback, and
// internal/harness (the experiment framework behind cmd/modcon-bench, which
// regenerates every quantitative claim of the paper; see EXPERIMENTS.md).
package modcon
