package modcon

// Public-API tests for Consensus.Sweep and the WithBatching lane knob: the
// sweep's per-trial outcomes must be bit-identical whether trials route
// through lanes or pooled sessions, at any width and worker count, and the
// option-validation errors must be actionable.

import (
	"errors"
	"reflect"
	"testing"
)

func sweepDigest(t *testing.T, c *Consensus, trials int, opts ...RunOption) ([]int, []Value) {
	t.Helper()
	works := make([]int, trials)
	values := make([]Value, trials)
	opts = append(opts, WithSeed(21))
	err := c.Sweep(trials, func() Scheduler { return NewUniformRandom() },
		func(tr Trial) []Value { return mixedInputs(c.N(), 2, tr.Index) },
		func(tr Trial, o *Outcome) {
			works[tr.Index] = o.TotalWork
			values[tr.Index] = o.Value
		}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return works, values
}

func TestConsensusSweepBatchingDeterminism(t *testing.T) {
	c, err := NewBinary(8)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 30
	baseWorks, baseValues := sweepDigest(t, c, trials, WithBatching(-1), WithWorkers(1))
	for _, tc := range []struct{ width, workers int }{{0, 1}, {8, 3}, {64, 2}} {
		works, values := sweepDigest(t, c, trials, WithBatching(tc.width), WithWorkers(tc.workers))
		if !reflect.DeepEqual(works, baseWorks) || !reflect.DeepEqual(values, baseValues) {
			t.Errorf("WithBatching(%d)+WithWorkers(%d) diverged from the unbatched single-worker sweep",
				tc.width, tc.workers)
		}
	}
}

func TestConsensusSweepStages(t *testing.T) {
	c, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	decided := 0
	err = c.Sweep(10, func() Scheduler { return NewRoundRobin() }, nil,
		func(tr Trial, o *Outcome) {
			for pid, d := range o.Decided {
				if !d {
					continue
				}
				decided++
				if stage := o.Stage[pid]; stage < 0 && !o.FellBack[pid] {
					t.Errorf("trial %d pid %d decided but reports stage %d without fallback", tr.Index, pid, stage)
				}
			}
		}, WithInputs(1), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if decided == 0 {
		t.Fatal("no process decided in any trial")
	}
}

func TestConsensusSweepOptionValidation(t *testing.T) {
	c, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	nop := func(Trial, *Outcome) {}
	mk := func() Scheduler { return NewRoundRobin() }

	err = c.Sweep(2, mk, nil, nop, WithInputs(1), WithScheduler(NewRoundRobin()))
	if !errors.Is(err, ErrBadOption) {
		t.Errorf("WithScheduler on Sweep: got %v, want ErrBadOption (factory required)", err)
	}
	err = c.Sweep(2, nil, nil, nop, WithInputs(1))
	if !errors.Is(err, ErrBadOption) {
		t.Errorf("nil scheduler factory on Sim: got %v, want ErrBadOption", err)
	}
	err = c.Sweep(2, mk, nil, nop)
	if !errors.Is(err, ErrBadOption) {
		t.Errorf("no inputs: got %v, want ErrBadOption", err)
	}
}
