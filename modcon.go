package modcon

import (
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

// Core model types, re-exported for users of the public API.
type (
	// Value is a consensus input/output value; None (⊥) marks "no value".
	Value = value.Value
	// Decision is a deciding object's annotated output (decision bit,
	// value).
	Decision = value.Decision
	// Env is the process-side view of shared memory; objects are written
	// against it.
	Env = core.Env
	// Object is a one-shot deciding object (conciliator, ratifier,
	// consensus, or any composition thereof).
	Object = core.Object
	// Scheduler is an adversary: it picks which pending operation executes
	// next, seeing only what its power class permits.
	Scheduler = sched.Scheduler
	// Power is an adversary information class (oblivious, value-oblivious,
	// location-oblivious, adaptive).
	Power = sched.Power
	// Registers is a shared register file protocols allocate from.
	Registers = register.File
	// RegisterModel is a register consistency model: Atomic (the paper's
	// base model, the default), Regular (a read overlapping a write may
	// return either the old or the new value), or Interposed (a
	// linearizable interposition that hides in-flight operation contents
	// from strong adversaries). Select one with WithRegisters.
	RegisterModel = register.Semantics
	// Trace is a recorded execution.
	Trace = trace.Log
)

// None is the null value ⊥.
const None = value.None

// Adversary power classes (§2.1 of the paper).
const (
	Oblivious         = sched.Oblivious
	ValueOblivious    = sched.ValueOblivious
	LocationOblivious = sched.LocationOblivious
	Adaptive          = sched.Adaptive
)

// Register consistency models (see RegisterModel and WithRegisters).
const (
	// Atomic registers linearize every operation at its execution step: a
	// read returns exactly the latest completed write. This is the paper's
	// base model and the default.
	Atomic = register.Atomic
	// Regular registers weaken reads that overlap a write: such a read may
	// return either the old or the new value (Lamport's regularity). Both
	// backends implement it; on Sim the old/new resolution is a
	// deterministic function of the schedule and seed.
	Regular = register.Regular
	// Interposed registers are atomic registers behind a linearizable
	// interposition that hides the contents of in-flight operations from
	// the adversary, blunting value-aware scheduling attacks. Sim-only:
	// the live backend has no adversary whose view could be blunted.
	Interposed = register.Interposed
)

// Decide constructs a (1, v) decision.
func Decide(v Value) Decision { return value.Decide(v) }

// Continue constructs a (0, v) non-decision.
func Continue(v Value) Decision { return value.Continue(v) }

// Compose sequentially composes deciding objects: a decision by any object
// terminates the composite immediately (§3.2).
func Compose(objs ...Object) Object { return core.Compose(objs...) }

// NewRegisters returns an empty register file.
func NewRegisters() *Registers { return register.NewFile() }

// Adversary constructors. Each returns a fresh, stateful scheduler; do not
// reuse one scheduler across executions.
var (
	// NewRoundRobin cycles through live processes (oblivious).
	NewRoundRobin = sched.NewRoundRobin
	// NewFixedOrder repeats a fixed permutation (oblivious).
	NewFixedOrder = sched.NewFixedOrder
	// NewUniformRandom picks a uniformly random live process (oblivious).
	NewUniformRandom = sched.NewUniformRandom
	// NewLaggard keeps all processes in lockstep (oblivious).
	NewLaggard = sched.NewLaggard
	// NewFrontrunner lets one process run solo (oblivious).
	NewFrontrunner = sched.NewFrontrunner
	// NewNoisy is the noisy scheduler of §4.2: planned step times with
	// cumulative Gaussian jitter.
	NewNoisy = sched.NewNoisy
	// NewPriority always runs the highest-priority pending process (§4.2).
	NewPriority = sched.NewPriority
	// NewFirstMoverAttack is the location-oblivious adversary from the
	// Theorem 7 analysis, tuned against first-mover conciliators.
	NewFirstMoverAttack = sched.NewFirstMoverAttack
	// NewEagerWriteAttack is a simpler location-oblivious attack.
	NewEagerWriteAttack = sched.NewEagerWriteAttack
	// NewSplitVote is a value-oblivious strategy exercising skewed
	// interleavings.
	NewSplitVote = sched.NewSplitVote
	// NewAdaptiveSpoiler is a strong-adversary strategy that targets
	// conflicting deterministic writes.
	NewAdaptiveSpoiler = sched.NewAdaptiveSpoiler
	// NewStaleReadAttack is a value-oblivious strategy that fires writes
	// over registers with pending reads and then releases the reads — the
	// interleaving under which regular registers (WithRegisters(file,
	// Regular)) may return stale values that atomic registers forbid.
	NewStaleReadAttack = sched.NewStaleReadAttack
	// NewParametric builds a configurable adversary from a
	// ParametricConfig — the scheduler family the adversary search
	// (cmd/modcon-bench -search) explores. For the text form, see
	// NewSearchedScheduler and WithSearchedScheduler.
	NewParametric = sched.NewParametric
	// ParseParametric parses a parametric adversary config from its
	// canonical text form (the form search reports and winner names use).
	ParseParametric = sched.ParseParametric
)

// ParametricConfig describes one adversary in the parametric scheduler
// family: a base policy plus per-pid weights, stall/burst phases, and
// condition→action rules. Its String method emits the canonical text config
// that ParseParametric, NewSearchedScheduler, and WithSearchedScheduler
// accept.
type ParametricConfig = sched.ParamConfig
