package modcon

import (
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

// Core model types, re-exported for users of the public API.
type (
	// Value is a consensus input/output value; None (⊥) marks "no value".
	Value = value.Value
	// Decision is a deciding object's annotated output (decision bit,
	// value).
	Decision = value.Decision
	// Env is the process-side view of shared memory; objects are written
	// against it.
	Env = core.Env
	// Object is a one-shot deciding object (conciliator, ratifier,
	// consensus, or any composition thereof).
	Object = core.Object
	// Scheduler is an adversary: it picks which pending operation executes
	// next, seeing only what its power class permits.
	Scheduler = sched.Scheduler
	// Power is an adversary information class (oblivious, value-oblivious,
	// location-oblivious, adaptive).
	Power = sched.Power
	// Registers is a shared register file protocols allocate from.
	Registers = register.File
	// Trace is a recorded execution.
	Trace = trace.Log
)

// None is the null value ⊥.
const None = value.None

// Adversary power classes (§2.1 of the paper).
const (
	Oblivious         = sched.Oblivious
	ValueOblivious    = sched.ValueOblivious
	LocationOblivious = sched.LocationOblivious
	Adaptive          = sched.Adaptive
)

// Decide constructs a (1, v) decision.
func Decide(v Value) Decision { return value.Decide(v) }

// Continue constructs a (0, v) non-decision.
func Continue(v Value) Decision { return value.Continue(v) }

// Compose sequentially composes deciding objects: a decision by any object
// terminates the composite immediately (§3.2).
func Compose(objs ...Object) Object { return core.Compose(objs...) }

// NewRegisters returns an empty register file.
func NewRegisters() *Registers { return register.NewFile() }

// Adversary constructors. Each returns a fresh, stateful scheduler; do not
// reuse one scheduler across executions.
var (
	// NewRoundRobin cycles through live processes (oblivious).
	NewRoundRobin = sched.NewRoundRobin
	// NewFixedOrder repeats a fixed permutation (oblivious).
	NewFixedOrder = sched.NewFixedOrder
	// NewUniformRandom picks a uniformly random live process (oblivious).
	NewUniformRandom = sched.NewUniformRandom
	// NewLaggard keeps all processes in lockstep (oblivious).
	NewLaggard = sched.NewLaggard
	// NewFrontrunner lets one process run solo (oblivious).
	NewFrontrunner = sched.NewFrontrunner
	// NewNoisy is the noisy scheduler of §4.2: planned step times with
	// cumulative Gaussian jitter.
	NewNoisy = sched.NewNoisy
	// NewPriority always runs the highest-priority pending process (§4.2).
	NewPriority = sched.NewPriority
	// NewFirstMoverAttack is the location-oblivious adversary from the
	// Theorem 7 analysis, tuned against first-mover conciliators.
	NewFirstMoverAttack = sched.NewFirstMoverAttack
	// NewEagerWriteAttack is a simpler location-oblivious attack.
	NewEagerWriteAttack = sched.NewEagerWriteAttack
	// NewSplitVote is a value-oblivious strategy exercising skewed
	// interleavings.
	NewSplitVote = sched.NewSplitVote
	// NewAdaptiveSpoiler is a strong-adversary strategy that targets
	// conflicting deterministic writes.
	NewAdaptiveSpoiler = sched.NewAdaptiveSpoiler
)
