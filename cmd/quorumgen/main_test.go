package main

import "testing"

func TestRunQuorums(t *testing.T) {
	if err := run([]string{"-m", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable(t *testing.T) {
	if err := run([]string{"-table"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadM(t *testing.T) {
	if err := run([]string{"-m", "1"}); err == nil {
		t.Fatal("expected error for m=1")
	}
}
