// Command quorumgen prints the quorum systems behind the paper's m-valued
// ratifier (§6.2): the Bollobás-optimal pool assignment and the bit-vector
// encoding, plus the space table comparing both against the paper's
// formulas.
//
// Usage:
//
//	quorumgen -m 6            # print W_v/R_v for every value
//	quorumgen -table          # registers-vs-m table
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/modular-consensus/modcon/internal/quorum"
	"github.com/modular-consensus/modcon/internal/value"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "quorumgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("quorumgen", flag.ContinueOnError)
	var (
		m     = fs.Int("m", 6, "number of values")
		table = fs.Bool("table", false, "print the space table instead")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *table {
		fmt.Printf("%8s  %12s  %16s  %12s\n", "m", "pool regs", "bitvector regs", "2⌈lg m⌉+1")
		for _, mm := range []int{2, 4, 8, 16, 64, 256, 1024, 4096, 1 << 16, 1 << 20} {
			row := quorum.Space(mm)
			fmt.Printf("%8d  %12d  %16d  %12d\n", row.M, row.PoolRegisters, row.BitVecRegisters, row.PaperBitVecExact)
		}
		return nil
	}

	if *m < 2 {
		return fmt.Errorf("m=%d must be at least 2", *m)
	}
	for _, s := range []quorum.Scheme{quorum.NewPool(*m), quorum.NewBitVector(*m)} {
		if err := quorum.Verify(s); err != nil {
			return err
		}
		fmt.Printf("%s: %d values over %d registers (Bollobás sum %.6f)\n",
			s.Name(), s.M(), s.PoolSize(), quorum.BollobasSum(s))
		for v := 0; v < s.M(); v++ {
			fmt.Printf("  v=%-4d W=%v R=%v\n", v,
				s.WriteQuorum(value.Value(v)), s.ReadQuorum(value.Value(v)))
		}
		fmt.Println()
	}
	return nil
}
