package main

// Shard-merge correctness: a merged partition of the seed space must equal
// the single-shard run exactly — same histograms, tally, and digest — for
// any shard count, and the merge must reject partitions that do not tile the
// space. The fuzz target drives the merge over random partitions and input
// orders of synthetic aggregates, plus associativity of the underlying
// histogram merge.

import (
	"encoding/json"
	"testing"

	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
)

// reportKey flattens the determinism-relevant fields of a report — the
// digest plus the exact JSON of both histograms and the tally — so tests
// compare whole aggregates at once.
func reportKey(t testing.TB, r *shardReport) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Steps   *obs.Hist
		Work    *obs.Hist
		Decided int
		Digest  string
		Shard   shardSlice
	}{r.Steps, r.Work, r.Decided, r.Digest, r.Shard})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestShardSpanTiles(t *testing.T) {
	for _, tc := range []struct{ of, trials int }{{1, 7}, {3, 7}, {4, 4}, {5, 17}, {8, 1000}} {
		at := 0
		for i := 0; i < tc.of; i++ {
			lo, hi := shardSpan(i, tc.of, tc.trials)
			if lo != at || hi < lo {
				t.Fatalf("shardSpan(%d,%d,%d) = [%d,%d), want a tile starting at %d",
					i, tc.of, tc.trials, lo, hi, at)
			}
			at = hi
		}
		if at != tc.trials {
			t.Fatalf("of=%d trials=%d: spans cover [0,%d)", tc.of, tc.trials, at)
		}
	}
}

// TestShardMergeMatchesSingleRun is the end-to-end contract on the real
// workload: run the consensus sweep sharded M ways in-process, merge, and
// compare against the unsharded run — every M must agree exactly.
func TestShardMergeMatchesSingleRun(t *testing.T) {
	const trials = 48
	const seed = 9
	full, err := runShardSlice(0, 1, trials, seed, 2, register.Atomic)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize the single shard through the same merge the fan-out uses.
	base, err := mergeShardReports([]*shardReport{full})
	if err != nil {
		t.Fatal(err)
	}
	want := reportKey(t, base)
	for _, m := range []int{2, 3, 5} {
		reports := make([]*shardReport, m)
		for i := 0; i < m; i++ {
			if reports[i], err = runShardSlice(i, m, trials, seed, 1, register.Atomic); err != nil {
				t.Fatal(err)
			}
		}
		// Feed the merge out of order; it must not care.
		reports[0], reports[m-1] = reports[m-1], reports[0]
		merged, err := mergeShardReports(reports)
		if err != nil {
			t.Fatal(err)
		}
		if got := reportKey(t, merged); got != want {
			t.Errorf("shards=%d: merged aggregates diverged from the single-shard run\n got %s\nwant %s", m, got, want)
		}
	}
}

func TestShardMergeRejectsBadTilings(t *testing.T) {
	mk := func(lo, hi, trials int, seed uint64) *shardReport {
		return &shardReport{
			Workload: "consensus-sweep", N: scalingN, Trials: trials, Seed: seed,
			Shard: shardSlice{Lo: lo, Hi: hi},
			Steps: &obs.Hist{}, Work: &obs.Hist{},
		}
	}
	cases := []struct {
		name    string
		reports []*shardReport
	}{
		{"empty", nil},
		{"gap", []*shardReport{mk(0, 4, 10, 1), mk(6, 10, 10, 1)}},
		{"overlap", []*shardReport{mk(0, 6, 10, 1), mk(4, 10, 10, 1)}},
		{"short", []*shardReport{mk(0, 8, 10, 1)}},
		{"mixed-seed", []*shardReport{mk(0, 5, 10, 1), mk(5, 10, 10, 2)}},
		{"mixed-trials", []*shardReport{mk(0, 5, 10, 1), mk(5, 12, 12, 1)}},
		{"mixed-registers", func() []*shardReport {
			a, b := mk(0, 5, 10, 1), mk(5, 10, 10, 1)
			a.Registers = "atomic"
			b.Registers = "regular"
			return []*shardReport{a, b}
		}()},
	}
	for _, tc := range cases {
		if _, err := mergeShardReports(tc.reports); err == nil {
			t.Errorf("%s: merge accepted a bad partition", tc.name)
		}
	}
}

// synthShard builds a shard artifact over [lo, hi) from synthetic per-trial
// observations derived purely from (seed, index) — the same shape the real
// sweep produces, cheap enough to fuzz.
func synthShard(t testing.TB, lo, hi, trials int, seed uint64) *shardReport {
	t.Helper()
	var steps, work obs.Hist
	decided := 0
	for i := lo; i < hi; i++ {
		v := harness.TrialSeed(seed, i)
		steps.AddInt(int(v % 10_000))
		work.AddInt(int(v >> 32 % 1_000))
		if v&1 == 0 {
			decided++
		}
	}
	digest, err := scalingDigest(&steps, &work, decided)
	if err != nil {
		t.Fatal(err)
	}
	return &shardReport{
		Workload: "consensus-sweep", N: scalingN, Trials: trials, Seed: seed,
		Shard: shardSlice{Lo: lo, Hi: hi},
		Steps: &steps, Work: &work, Decided: decided, Digest: digest,
	}
}

// FuzzShardMerge fuzzes the merge over random partitions of a fixed seed
// space, fed in random rotations: the merged aggregates must always equal
// the whole-space artifact (commutativity over any tiling), and merging the
// histograms pairwise left-to-right must equal merging right-to-left
// (associativity of obs.Hist.Merge).
func FuzzShardMerge(f *testing.F) {
	f.Add(uint16(64), uint8(4), uint64(1), uint8(1))
	f.Add(uint16(1), uint8(1), uint64(42), uint8(0))
	f.Add(uint16(500), uint8(7), uint64(99), uint8(5))
	f.Fuzz(func(t *testing.T, trials16 uint16, shards8 uint8, seed uint64, rot8 uint8) {
		trials := int(trials16)%512 + 1
		m := int(shards8)%8 + 1
		base, err := mergeShardReports([]*shardReport{synthShard(t, 0, trials, trials, seed)})
		if err != nil {
			t.Fatal(err)
		}
		want := reportKey(t, base)

		reports := make([]*shardReport, 0, m)
		for i := 0; i < m; i++ {
			lo, hi := shardSpan(i, m, trials)
			reports = append(reports, synthShard(t, lo, hi, trials, seed))
		}
		rot := int(rot8) % m
		rotated := append(append([]*shardReport(nil), reports[rot:]...), reports[:rot]...)
		merged, err := mergeShardReports(rotated)
		if err != nil {
			t.Fatal(err)
		}
		if got := reportKey(t, merged); got != want {
			t.Fatalf("trials=%d shards=%d rot=%d: merged aggregates diverged from the whole-space artifact",
				trials, m, rot)
		}

		// Associativity: fold the shard step-histograms left-to-right and
		// right-to-left; obs.Hist.Merge must not care about grouping.
		var ltr, rtl obs.Hist
		for i := 0; i < m; i++ {
			ltr.Merge(reports[i].Steps)
			rtl.Merge(reports[m-1-i].Steps)
		}
		lb, _ := json.Marshal(&ltr)
		rb, _ := json.Marshal(&rtl)
		if string(lb) != string(rb) {
			t.Fatalf("hist merge is grouping-sensitive:\n ltr %s\n rtl %s", lb, rb)
		}
	})
}

// TestShardRegistersAttributionAndMerge: a shard run on regular registers
// stamps the model into its artifact and manifest, merging same-model
// shards preserves the attribution, and the regular-model aggregates
// genuinely differ from atomic (the stale-read resolution changes
// schedules' outcomes, so identical digests would mean the flag was
// dropped on the floor).
func TestShardRegistersAttributionAndMerge(t *testing.T) {
	const trials = 32
	const seed = 9
	atomic, err := runShardSlice(0, 1, trials, seed, 2, register.Atomic)
	if err != nil {
		t.Fatal(err)
	}
	regular, err := runShardSlice(0, 1, trials, seed, 2, register.Regular)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.Registers != "atomic" || regular.Registers != "regular" {
		t.Fatalf("attribution: atomic=%q regular=%q", atomic.Registers, regular.Registers)
	}
	if regular.Manifest.Registers != "regular" || regular.Manifest.Config["registers"] != "regular" {
		t.Fatalf("manifest attribution: %q / %q", regular.Manifest.Registers, regular.Manifest.Config["registers"])
	}
	if atomic.Digest == regular.Digest {
		t.Fatal("atomic and regular runs produced identical digests — the register model is not reaching the sweep")
	}

	// Sharded regular-model runs must merge to the unsharded regular run.
	base, err := mergeShardReports([]*shardReport{regular})
	if err != nil {
		t.Fatal(err)
	}
	if base.Registers != "regular" {
		t.Fatalf("merged attribution %q", base.Registers)
	}
	parts := make([]*shardReport, 3)
	for i := range parts {
		if parts[i], err = runShardSlice(i, 3, trials, seed, 1, register.Regular); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := mergeShardReports(parts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportKey(t, merged), reportKey(t, base); got != want {
		t.Errorf("regular-model shard merge diverged from the single-shard run\n got %s\nwant %s", got, want)
	}
}

// TestShardMergeNormalizesLegacyRegisters: artifacts predating the
// registers field (empty string) merge as atomic rather than erroring.
func TestShardMergeNormalizesLegacyRegisters(t *testing.T) {
	legacy := synthShard(t, 0, 5, 10, 1) // Registers left ""
	tagged := synthShard(t, 5, 10, 10, 1)
	tagged.Registers = "atomic"
	merged, err := mergeShardReports([]*shardReport{legacy, tagged})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Registers != "atomic" {
		t.Fatalf("legacy merge attribution %q, want atomic", merged.Registers)
	}
}
