// Command modcon-bench regenerates the paper's quantitative claims.
//
// Each experiment (E1–E23, see DESIGN.md §3 and EXPERIMENTS.md) sweeps the
// relevant parameter, runs many simulated executions per cell on the
// parallel trial engine, and prints a table comparing measurements against
// the corresponding theorem.
//
// # Experiments and shared sweep knobs
//
//	modcon-bench                 # run every sim experiment at default scale
//	modcon-bench -run E1,E6      # run selected experiments
//	modcon-bench -backend live   # run the live-backend set (E18 validation,
//	                             # E19 wall-clock, E20 faults) instead of
//	                             # the sim set
//	modcon-bench -trials 50      # shrink/grow per-cell trial counts
//	modcon-bench -workers 8      # cap concurrent trials (0 = GOMAXPROCS)
//	modcon-bench -seed 1         # root seed (per-trial seeds derive from it)
//	modcon-bench -timeout 2m     # wall-clock budget for the whole run
//	modcon-bench -fail-fast      # stop a fault sweep at its first safety
//	                             # violation instead of finishing the cell
//	modcon-bench -registers regular  # run every consensus sweep on regular
//	                             # (or interposed, sim-only) registers
//	                             # instead of atomic
//	modcon-bench -progress 2s    # stream progress lines to stderr (trials
//	                             # done, trials/sec, ETA, violations)
//	modcon-bench -markdown       # emit EXPERIMENTS.md-ready markdown
//	modcon-bench -json           # emit a manifest + tables JSON object
//	modcon-bench -list           # list experiments
//
// # Benchmarks and profiling
//
//	modcon-bench -bench-core     # microbenchmark the step engine itself,
//	                             # writing BENCH_sim.json (see -bench-out,
//	                             # -bench-budget, -bench-n)
//	modcon-bench -bench-scaling  # sweep worker counts 1,2,4,…,NumCPU over a
//	                             # fixed consensus sweep on pooled sessions,
//	                             # recording the scaling curve (wall time,
//	                             # speedup, aggregate digests) into the same
//	                             # artifact (see -scaling-trials; combinable
//	                             # with -bench-core)
//	modcon-bench -cpuprofile p   # write a CPU profile of the run
//	modcon-bench -memprofile p   # write a heap profile at exit
//	modcon-bench -trace p        # write a runtime execution trace
//
// # Sharded fan-out
//
//	modcon-bench -shards 4       # split the consensus sweep's seed space over
//	                             # 4 shard subprocesses and print the merged
//	                             # artifact — byte-identical outside the
//	                             # manifest to -shards 1 at any shard count
//	modcon-bench -shard-run 2/4  # run shard 2 of 4 by hand (artifact on
//	                             # stdout; spread shards across machines and
//	                             # reassemble with -merge-shards)
//	modcon-bench -merge-shards a.json,b.json  # merge saved shard artifacts
//
// # Adversary search
//
//	modcon-bench -search         # search the parametric scheduler family for
//	                             # a worst-case adversary and print a JSON
//	                             # artifact with full provenance (see
//	                             # -search-power, -search-algo,
//	                             # -search-objective, -search-budget,
//	                             # -search-trials)
//	modcon-bench -search-replay 'adv:…'  # re-evaluate a found adversary
//	                             # config; bit-identical at any -workers
//
// # Open-loop workloads and trace replay
//
//	modcon-bench -workload 'poisson:rate=2000;serve:servers=4'
//	                             # run the consensus sweep open-loop under a
//	                             # declarative arrival process and print a
//	                             # report with saturation metrics (offered vs
//	                             # achieved rate, latency percentiles) and the
//	                             # executed workload as an inline tracev1
//	                             # recording; combinable with -shards (slice
//	                             # traces merge exactly)
//	modcon-bench -workload ... -trace-out run.trace  # also save the recording
//	modcon-bench -trace-in run.trace                 # replay a recording and
//	                             # verify per-trial work is bit-identical;
//	                             # accepts comma-separated slice files, merged
//	                             # before replay
//	modcon-bench -pace 1000      # replay the arrival schedule on the wall
//	                             # clock, 1000× faster than recorded virtual
//	                             # time (0 = admit in order, full speed)
//
// Results are deterministic in (-seed, -trials) and independent of
// -workers: trial seeds are derived per-trial and results are merged in
// trial order. JSON artifacts carry a run manifest (seed, config echo,
// backend, toolchain) so each is reproducible from the artifact alone.
//
// The exit status is nonzero when any experiment reports a safety
// violation, so CI can gate on it directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"github.com/modular-consensus/modcon/internal/exp"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modcon-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modcon-bench", flag.ContinueOnError)
	var (
		runList  = fs.String("run", "", "comma-separated experiment ids (default: all for the selected backend)")
		backend  = fs.String("backend", "sim", "experiment set to run: sim (deterministic simulator) or live (goroutine backend)")
		trials   = fs.Int("trials", 0, "per-cell trials (0 = experiment default)")
		seed     = fs.Uint64("seed", 1, "root seed (per-trial seeds are derived from it)")
		workers  = fs.Int("workers", 0, "concurrent trials per cell (0 = GOMAXPROCS; results identical at any value)")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget; in-flight executions are cancelled when it expires (0 = none)")
		failFast = fs.Bool("fail-fast", false, "stop fault sweeps (E20) at the first safety violation")
		regModel = fs.String("registers", "atomic", "register consistency model for every consensus sweep, including the -shards/-shard-run workload and the -bench-core/-bench-scaling cells: atomic, regular, or interposed (sim-only); E21 sweeps the models itself and ignores this")
		progress = fs.Duration("progress", 0, "stream progress snapshots to stderr at this interval (0 = off)")
		markdown = fs.Bool("markdown", false, "emit markdown instead of aligned text")
		jsonOut  = fs.Bool("json", false, "emit a JSON object with a run manifest and the completed tables")
		list     = fs.Bool("list", false, "list experiments and exit")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		traceFile  = fs.String("trace", "", "write a runtime execution trace of the run to this file")

		benchCore      = fs.Bool("bench-core", false, "microbenchmark the step engine and write a JSON perf baseline")
		benchScaling   = fs.Bool("bench-scaling", false, "sweep worker counts 1,2,4,…,NumCPU over a fixed consensus sweep and record the scaling curve (combinable with -bench-core; same output file)")
		benchOut       = fs.String("bench-out", "BENCH_sim.json", "output path for -bench-core / -bench-scaling")
		benchBudget    = fs.Duration("bench-budget", time.Second, "time budget per -bench-core cell")
		benchN         = fs.String("bench-n", "2,16,256", "comma-separated process counts for -bench-core")
		scalingTrials  = fs.Int("scaling-trials", 2000, "trials per worker count for -bench-scaling")
		scalingWorkers = fs.String("scaling-workers", "", "comma-separated worker counts for -bench-scaling (default: 1,2,4,… up to NumCPU)")

		shards      = fs.Int("shards", 0, "fan the consensus sweep out over this many shard subprocesses and print the merged artifact (-trials is the full seed space; 0 = off)")
		shardRun    = fs.String("shard-run", "", "run one shard i/M of the consensus sweep and print its artifact (used by -shards; usable by hand across machines)")
		mergeShards = fs.String("merge-shards", "", "comma-separated shard artifact files to merge into one normalized report")

		workloadSpec = fs.String("workload", "", "run the consensus sweep open-loop under this workload spec (e.g. 'poisson:rate=2000;serve:servers=4') and print a report with saturation metrics and the executed tracev1 recording; combinable with -shards")
		traceOut     = fs.String("trace-out", "", "write the recorded workload trace (tracev1 text) to this file")
		traceIn      = fs.String("trace-in", "", "replay these comma-separated workload trace files (merged when slices) and verify per-trial work against the recording")
		pace         = fs.Float64("pace", 0, "map the workload's virtual arrival schedule onto the wall clock at this speedup factor (0 = admit in arrival order at full speed)")

		search          = fs.Bool("search", false, "search the parametric scheduler family for a worst-case adversary and print a JSON artifact (see the -search-* flags)")
		searchPower     = fs.String("search-power", "value-oblivious", "adversary power class to search: oblivious, value-oblivious, location-oblivious, or adaptive")
		searchAlgo      = fs.String("search-algo", "evolve", "search algorithm: random, evolve, or halving")
		searchObjective = fs.String("search-objective", "work", "search objective: work (mean total work) or violations (safety-violation rate)")
		searchBudget    = fs.Int("search-budget", 0, "total trial budget for the search (0 = 96 evaluations' worth of -search-trials)")
		searchTrials    = fs.Int("search-trials", 48, "trials per candidate evaluation")
		searchReplay    = fs.String("search-replay", "", "re-evaluate this parametric scheduler config instead of searching (bit-identical at any -workers)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Every mode below — experiments, shard fan-out, bench baselines —
	// honors -registers, parsed once so the manifests all attribute the
	// same effective model.
	registers, err := register.ParseSemantics(*regModel)
	if err != nil {
		return fmt.Errorf("-registers: %w", err)
	}

	// Profiling wraps whichever mode runs — the experiment loop or the
	// bench-core matrix — so hot-path investigations use the same flags
	// either way.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	if *workloadSpec != "" || *traceIn != "" {
		// Workload modes share the sweep knobs with the shard modes (and
		// route -shard-run/-shards themselves when a workload is in play).
		total := *trials
		if total == 0 {
			total = *scalingTrials
		}
		return runWorkloadMode(workloadFlags{
			Spec:      *workloadSpec,
			TraceOut:  *traceOut,
			TraceIn:   *traceIn,
			Pace:      *pace,
			Trials:    total,
			Seed:      *seed,
			Workers:   *workers,
			Shards:    *shards,
			ShardRun:  *shardRun,
			Registers: registers,
		})
	}
	if *traceOut != "" {
		return fmt.Errorf("-trace-out needs -workload (nothing to record)")
	}

	if *shardRun != "" || *shards > 0 || *mergeShards != "" {
		// Shard modes share the sweep knobs: -trials is the FULL seed space
		// (0 picks the -scaling-trials default so a bare `-shards 4` works),
		// -seed the shared root, -workers each shard's concurrency cap.
		total := *trials
		if total == 0 {
			total = *scalingTrials
		}
		switch {
		case *shardRun != "":
			return runShardRun(*shardRun, total, *seed, *workers, registers)
		case *mergeShards != "":
			return runMergeShards(*mergeShards)
		default:
			return runShardFanout(*shards, total, *seed, *workers, registers)
		}
	}

	if *search || *searchReplay != "" {
		return runSearch(searchFlags{
			Power:     *searchPower,
			Algo:      *searchAlgo,
			Objective: *searchObjective,
			Budget:    *searchBudget,
			Trials:    *searchTrials,
			Replay:    *searchReplay,
			Seed:      *seed,
			Workers:   *workers,
		}, registers)
	}

	if *benchCore || *benchScaling {
		ns, err := parseBenchNs(*benchN)
		if err != nil {
			return err
		}
		var sw []int
		if *scalingWorkers != "" {
			if sw, err = parseBenchNs(*scalingWorkers); err != nil {
				return fmt.Errorf("-scaling-workers: %w", err)
			}
		}
		return runBench(benchOpts{
			Out:            *benchOut,
			Core:           *benchCore,
			Scaling:        *benchScaling,
			Budget:         *benchBudget,
			Ns:             ns,
			ScalingTrials:  *scalingTrials,
			ScalingWorkers: sw,
			Seed:           *seed,
			Registers:      registers,
		})
	}

	if *list {
		for _, e := range exp.All() {
			be := "sim"
			if e.Live {
				be = "live"
			}
			fmt.Printf("%-4s [%s] %s\n", e.ID, be, e.Title)
		}
		return nil
	}

	// -run selects freely across backends; without it, -backend picks the
	// default set (sim experiments are deterministic in the seed, live ones
	// only in their safety verdicts).
	var selected []exp.Experiment
	if *runList == "" {
		switch *backend {
		case "sim":
			selected = exp.ByBackend(false)
		case "live":
			selected = exp.ByBackend(true)
		default:
			return fmt.Errorf("unknown backend %q (sim or live)", *backend)
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := exp.Config{Trials: *trials, Seed: *seed, Workers: *workers, Ctx: ctx, FailFast: *failFast, Registers: registers}
	if *progress > 0 {
		cfg.Reporter = obs.NewReporter(obs.Text(os.Stderr), *progress)
		cfg.Meter = &obs.Meter{}
	}

	// The manifest echoes every effective flag so a JSON artifact is
	// reproducible (and attributable) from the artifact alone.
	manifest := obs.NewManifest("modcon-bench")
	manifest.Seed = *seed
	manifest.Backend = *backend
	manifest.Registers = registers.String()
	manifest.Config = map[string]string{
		"run":       *runList,
		"backend":   *backend,
		"trials":    fmt.Sprint(*trials),
		"seed":      fmt.Sprint(*seed),
		"workers":   fmt.Sprint(*workers),
		"timeout":   timeout.String(),
		"fail-fast": fmt.Sprint(*failFast),
		"registers": registers.String(),
	}

	var tables []*exp.Table
	for i, e := range selected {
		start := time.Now()
		table, err := runExperiment(ctx, e, cfg)
		if err != nil {
			// The budget expired: report what completed, then the error.
			if *jsonOut {
				if jerr := emitJSON(manifest, tables); jerr != nil {
					return jerr
				}
			}
			return err
		}
		tables = append(tables, table)
		if *jsonOut {
			continue
		}
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(table)
			fmt.Printf("(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if *jsonOut {
		if err := emitJSON(manifest, tables); err != nil {
			return err
		}
	}
	// A safety violation is a bug, never bad luck: exit nonzero so CI and
	// scripts fail without having to parse the tables.
	violations := 0
	for _, t := range tables {
		violations += t.Violations
	}
	if violations > 0 {
		return fmt.Errorf("%d safety violation(s) observed — see the table notes above", violations)
	}
	return nil
}

// runExperiment executes one experiment, converting the trial engine's
// cancellation panic (see exp.Config.Ctx) back into an error so a -timeout
// expiry exits cleanly instead of crashing.
func runExperiment(ctx context.Context, e exp.Experiment, cfg exp.Config) (table *exp.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ctx.Err() != nil {
				err = fmt.Errorf("%s cancelled: %w", e.ID, context.Cause(ctx))
				return
			}
			panic(r)
		}
	}()
	return e.Run(cfg), nil
}

// jsonReport is the -json output schema: a run manifest followed by the
// completed tables.
type jsonReport struct {
	Manifest obs.Manifest `json:"manifest"`
	Tables   []*exp.Table `json:"tables"`
}

func emitJSON(manifest obs.Manifest, tables []*exp.Table) error {
	if tables == nil {
		tables = []*exp.Table{} // always an array, even when nothing completed
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Manifest: manifest, Tables: tables})
}

// startProfiles begins the CPU profile and execution trace (if requested)
// and returns a stop function that ends them and writes the heap profile.
// The stop function is safe to call exactly once, including after a partial
// failure mid-run.
func startProfiles(cpu, mem, traceOut string) (func(), error) {
	var stops []func()
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			stop()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stop()
			return nil, fmt.Errorf("trace: %w", err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if mem != "" {
		stops = append(stops, func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "modcon-bench: memprofile:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "modcon-bench: memprofile:", err)
			}
		})
	}
	return stop, nil
}
