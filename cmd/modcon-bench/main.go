// Command modcon-bench regenerates the paper's quantitative claims.
//
// Each experiment (E1–E15, see DESIGN.md §3 and EXPERIMENTS.md) sweeps the
// relevant parameter, runs many simulated executions per cell, and prints a
// table comparing measurements against the corresponding theorem.
//
// Usage:
//
//	modcon-bench                 # run every experiment at default scale
//	modcon-bench -run E1,E6      # run selected experiments
//	modcon-bench -trials 50      # shrink/grow per-cell trial counts
//	modcon-bench -markdown       # emit EXPERIMENTS.md-ready markdown
//	modcon-bench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/modular-consensus/modcon/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modcon-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modcon-bench", flag.ContinueOnError)
	var (
		runList  = fs.String("run", "", "comma-separated experiment ids (default: all)")
		trials   = fs.Int("trials", 0, "per-cell trials (0 = experiment default)")
		seed     = fs.Uint64("seed", 1, "base seed")
		markdown = fs.Bool("markdown", false, "emit markdown instead of aligned text")
		list     = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []exp.Experiment
	if *runList == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	cfg := exp.Config{Trials: *trials, Seed: *seed}
	for i, e := range selected {
		start := time.Now()
		table := e.Run(cfg)
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(table)
			fmt.Printf("(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
