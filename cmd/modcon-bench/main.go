// Command modcon-bench regenerates the paper's quantitative claims.
//
// Each experiment (E1–E17, see DESIGN.md §3 and EXPERIMENTS.md) sweeps the
// relevant parameter, runs many simulated executions per cell on the
// parallel trial engine, and prints a table comparing measurements against
// the corresponding theorem.
//
// Usage:
//
//	modcon-bench                 # run every sim experiment at default scale
//	modcon-bench -run E1,E6      # run selected experiments
//	modcon-bench -backend live   # run the live-backend set (E18 validation,
//	                             # E19 wall-clock, E20 faults) instead of
//	                             # the sim set
//	modcon-bench -trials 50      # shrink/grow per-cell trial counts
//	modcon-bench -workers 8      # cap concurrent trials (0 = GOMAXPROCS)
//	modcon-bench -timeout 2m     # wall-clock budget for the whole run
//	modcon-bench -fail-fast      # stop a fault sweep at its first safety
//	                             # violation instead of finishing the cell
//	modcon-bench -markdown       # emit EXPERIMENTS.md-ready markdown
//	modcon-bench -json           # emit tables as a JSON array
//	modcon-bench -list           # list experiments
//	modcon-bench -bench-core     # microbenchmark the step engine itself,
//	                             # writing BENCH_sim.json (see -bench-out,
//	                             # -bench-budget, -bench-n)
//
// Results are deterministic in (-seed, -trials) and independent of
// -workers: trial seeds are derived per-trial and results are merged in
// trial order.
//
// The exit status is nonzero when any experiment reports a safety
// violation, so CI can gate on it directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/modular-consensus/modcon/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modcon-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modcon-bench", flag.ContinueOnError)
	var (
		runList  = fs.String("run", "", "comma-separated experiment ids (default: all for the selected backend)")
		backend  = fs.String("backend", "sim", "experiment set to run: sim (deterministic simulator) or live (goroutine backend)")
		trials   = fs.Int("trials", 0, "per-cell trials (0 = experiment default)")
		seed     = fs.Uint64("seed", 1, "root seed (per-trial seeds are derived from it)")
		workers  = fs.Int("workers", 0, "concurrent trials per cell (0 = GOMAXPROCS; results identical at any value)")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget; in-flight executions are cancelled when it expires (0 = none)")
		failFast = fs.Bool("fail-fast", false, "stop fault sweeps (E20) at the first safety violation")
		markdown = fs.Bool("markdown", false, "emit markdown instead of aligned text")
		jsonOut  = fs.Bool("json", false, "emit completed tables as a JSON array")
		list     = fs.Bool("list", false, "list experiments and exit")

		benchCore   = fs.Bool("bench-core", false, "microbenchmark the step engine and write a JSON perf baseline")
		benchOut    = fs.String("bench-out", "BENCH_sim.json", "output path for -bench-core")
		benchBudget = fs.Duration("bench-budget", time.Second, "time budget per -bench-core cell")
		benchN      = fs.String("bench-n", "2,16,256", "comma-separated process counts for -bench-core")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *benchCore {
		ns, err := parseBenchNs(*benchN)
		if err != nil {
			return err
		}
		return runBenchCore(*benchOut, *benchBudget, ns)
	}

	if *list {
		for _, e := range exp.All() {
			be := "sim"
			if e.Live {
				be = "live"
			}
			fmt.Printf("%-4s [%s] %s\n", e.ID, be, e.Title)
		}
		return nil
	}

	// -run selects freely across backends; without it, -backend picks the
	// default set (sim experiments are deterministic in the seed, live ones
	// only in their safety verdicts).
	var selected []exp.Experiment
	if *runList == "" {
		switch *backend {
		case "sim":
			selected = exp.ByBackend(false)
		case "live":
			selected = exp.ByBackend(true)
		default:
			return fmt.Errorf("unknown backend %q (sim or live)", *backend)
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := exp.Config{Trials: *trials, Seed: *seed, Workers: *workers, Ctx: ctx, FailFast: *failFast}

	var tables []*exp.Table
	for i, e := range selected {
		start := time.Now()
		table, err := runExperiment(ctx, e, cfg)
		if err != nil {
			// The budget expired: report what completed, then the error.
			if *jsonOut {
				if jerr := emitJSON(tables); jerr != nil {
					return jerr
				}
			}
			return err
		}
		tables = append(tables, table)
		if *jsonOut {
			continue
		}
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(table)
			fmt.Printf("(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if *jsonOut {
		if err := emitJSON(tables); err != nil {
			return err
		}
	}
	// A safety violation is a bug, never bad luck: exit nonzero so CI and
	// scripts fail without having to parse the tables.
	violations := 0
	for _, t := range tables {
		violations += t.Violations
	}
	if violations > 0 {
		return fmt.Errorf("%d safety violation(s) observed — see the table notes above", violations)
	}
	return nil
}

// runExperiment executes one experiment, converting the trial engine's
// cancellation panic (see exp.Config.Ctx) back into an error so a -timeout
// expiry exits cleanly instead of crashing.
func runExperiment(ctx context.Context, e exp.Experiment, cfg exp.Config) (table *exp.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ctx.Err() != nil {
				err = fmt.Errorf("%s cancelled: %w", e.ID, context.Cause(ctx))
				return
			}
			panic(r)
		}
	}()
	return e.Run(cfg), nil
}

func emitJSON(tables []*exp.Table) error {
	if tables == nil {
		tables = []*exp.Table{} // always an array, even when nothing completed
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(tables)
}
