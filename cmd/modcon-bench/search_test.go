package main

// -search mode contract: the artifact carries full provenance, the winner
// round-trips through the codec, and a replay of any config is bit-identical
// across worker counts (the property the reproduction workflow rests on).

import (
	"encoding/json"
	"testing"

	"github.com/modular-consensus/modcon/internal/advsearch"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
)

// searchOnce runs the engine directly against the CLI's workload target,
// the same call path runSearch takes minus the JSON encoder.
func searchOnce(t *testing.T, workers int) *advsearch.Report {
	t.Helper()
	rep, err := advsearch.Search(searchTarget(register.Atomic), advsearch.Options{
		Power: sched.ValueOblivious, Budget: 48, TrialsPerEval: 8,
		Seed: 5, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSearchTargetWinnerRoundTrips(t *testing.T) {
	rep := searchOnce(t, 0)
	if rep.Winner == nil {
		t.Fatal("no winner on the benign CLI workload")
	}
	if !configRoundTrips(rep.Winner.Config) {
		t.Fatalf("winner config %q does not round-trip", rep.Winner.Config)
	}
	if configRoundTrips("not-a-config") {
		t.Fatal("roundTrip accepted garbage")
	}
}

func TestSearchDeterministicAcrossWorkerCounts(t *testing.T) {
	a, err := json.Marshal(searchOnce(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(searchOnce(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("search reports differ across worker counts:\n%s\n%s", a, b)
	}
}

// TestSearchManifestProvenance: every flag that affects the result is
// echoed in the manifest config, so the artifact reproduces itself.
func TestSearchManifestProvenance(t *testing.T) {
	flags := searchFlags{
		Power: "location-oblivious", Algo: "halving", Objective: "violations",
		Seed: 7, Workers: 3,
	}
	m := searchManifest(flags, register.Regular, 384, 48)
	want := map[string]string{
		"search":           "true",
		"search-power":     "location-oblivious",
		"search-algo":      "halving",
		"search-objective": "violations",
		"search-budget":    "384",
		"search-trials":    "48",
		"search-replay":    "",
		"seed":             "7",
		"workers":          "3",
		"registers":        "regular",
	}
	for k, v := range want {
		if m.Config[k] != v {
			t.Errorf("manifest config[%q] = %q, want %q", k, m.Config[k], v)
		}
	}
	if m.Registers != "regular" || m.Seed != 7 {
		t.Errorf("manifest top-level fields off: %+v", m)
	}
	// Defaults fill in when the flag strings are empty.
	m = searchManifest(searchFlags{}, register.Atomic, 8, 8)
	if m.Config["search-algo"] != "evolve" || m.Config["search-objective"] != "work" {
		t.Errorf("default algo/objective not stamped: %+v", m.Config)
	}
}

// TestSearchReplayMatchesSearchEval: replaying the winner config through
// EvaluateScheduler at the same seed reproduces the search's numbers.
func TestSearchReplayMatchesSearchEval(t *testing.T) {
	rep := searchOnce(t, 2)
	if rep.Winner == nil {
		t.Fatal("no winner")
	}
	opts := advsearch.Options{
		Power: sched.ValueOblivious, Budget: 48, TrialsPerEval: 8, Seed: 5,
	}
	config := rep.Winner.Config
	ev := advsearch.EvaluateScheduler(searchTarget(register.Atomic), opts, config,
		func() (sched.Scheduler, error) { return sched.NewParametricFromString(config) })
	if ev.Score != rep.Winner.Score {
		t.Fatalf("replay score %v != search score %v", ev.Score, rep.Winner.Score)
	}
	aw, _ := json.Marshal(ev.Work)
	bw, _ := json.Marshal(rep.Winner.Work)
	if string(aw) != string(bw) {
		t.Fatalf("replay work hist differs:\n%s\n%s", aw, bw)
	}
}
