package main

// Sharded sweep fan-out: split one deterministic seed space across M shards,
// run each shard as its own modcon-bench subprocess, and merge the per-shard
// artifacts into a report byte-identical (manifest aside) to running the
// whole space in one process.
//
// The contract rests on two exact mechanisms. Trial i's work is a pure
// function of (root seed, i) — harness.Sweep.Offset lets a shard run the
// contiguous global slice [lo, hi) computing exactly what the unsharded
// sweep would — and obs.Hist holds only integer state with an exact
// commutative merge, so reassembling shard histograms loses nothing. The
// merge re-derives the digest from the merged aggregates; CI compares a
// 1-shard run against a merged 4-shard run with `jq del(.manifest)` + cmp.
//
//	modcon-bench -shards 4 -trials 2000 -seed 1   # fan out, merge, print
//	modcon-bench -shard-run 2/4 -trials 2000      # internal: one shard
//	modcon-bench -merge-shards a.json,b.json      # merge saved artifacts

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
)

// shardSlice identifies one shard's contiguous slice of the seed space.
type shardSlice struct {
	// Index and Of locate the shard (0 ≤ Index < Of); a merged report is
	// normalized to 0/1 so it is independent of how many shards produced it.
	Index int `json:"index"`
	Of    int `json:"of"`
	// Lo and Hi are the global trial range [Lo, Hi) the shard ran.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// shardReport is the per-shard (and, normalized, the merged) artifact: the
// aggregate histograms and decision tally of the consensus sweep over the
// shard's slice of the seed space.
type shardReport struct {
	Manifest obs.Manifest `json:"manifest"`
	Workload string       `json:"workload"`
	N        int          `json:"n"`
	// Trials is the size of the FULL seed space, which every shard of a run
	// shares; the shard's own share is Shard.Hi - Shard.Lo.
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
	// Registers is the register model the shard's sweep ran under; shards of
	// one run must agree on it, and the merge refuses mixed-model inputs.
	// Empty (an artifact predating the field) normalizes to atomic.
	Registers string     `json:"registers"`
	Shard     shardSlice `json:"shard"`
	Steps     *obs.Hist  `json:"steps"`
	Work      *obs.Hist  `json:"work"`
	// Decided counts trials where all n processes decided.
	Decided int `json:"decided"`
	// Digest is scalingDigest over (Steps, Work, Decided) — the same hash the
	// -bench-scaling determinism gate uses, recomputed after every merge.
	Digest string `json:"digest"`
}

// shardSpan computes shard index's slice of [0, trials): the canonical
// near-even contiguous partition, i*T/M to (i+1)*T/M.
func shardSpan(index, of, trials int) (lo, hi int) {
	return index * trials / of, (index + 1) * trials / of
}

// runShardSlice runs the consensus sweep over global trials [lo, hi) and
// returns the shard artifact. The sweep routes through the lane engine (the
// workload is lane-eligible), but Offset guarantees the same aggregates on
// any path.
func runShardSlice(index, of, trials int, seed uint64, workers int, regs register.Semantics) (*shardReport, error) {
	lo, hi := shardSpan(index, of, trials)
	var steps, work obs.Hist
	decided := 0
	err := harness.SweepProtocol(
		harness.Sweep{Trials: hi - lo, Offset: lo, Workers: workers, Seed: seed},
		scalingSweep(regs),
		func(tr harness.Trial, run *harness.ProtocolRun) {
			steps.AddInt(run.Result.TotalWork)
			work.AddInt(run.Result.MaxIndividualWork())
			if len(run.DecidedOutputs()) == scalingN {
				decided++
			}
		})
	if err != nil {
		return nil, err
	}
	digest, err := scalingDigest(&steps, &work, decided)
	if err != nil {
		return nil, err
	}
	manifest := obs.NewManifest("modcon-bench")
	manifest.Seed = seed
	manifest.Backend = "sim"
	manifest.Registers = regs.String()
	manifest.Config = map[string]string{
		"shard":     fmt.Sprintf("%d/%d", index, of),
		"trials":    fmt.Sprint(trials),
		"seed":      fmt.Sprint(seed),
		"workers":   fmt.Sprint(workers),
		"registers": regs.String(),
	}
	return &shardReport{
		Manifest:  manifest,
		Workload:  "consensus-sweep",
		N:         scalingN,
		Trials:    trials,
		Seed:      seed,
		Registers: regs.String(),
		Shard:     shardSlice{Index: index, Of: of, Lo: lo, Hi: hi},
		Steps:     &steps,
		Work:      &work,
		Decided:   decided,
		Digest:    digest,
	}, nil
}

// mergeShardReports folds shard artifacts into one normalized report. It
// demands a complete, non-overlapping tiling of [0, Trials) over a single
// (workload, n, trials, seed) run; input order is irrelevant because the
// shards are sorted by Lo and obs.Hist.Merge is exact and commutative.
func mergeShardReports(reports []*shardReport) (*shardReport, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("merge-shards: no shard reports")
	}
	sorted := append([]*shardReport(nil), reports...)
	// Order by (Lo, Hi): an empty shard — M > trials leaves some slices
	// empty — shares its Lo with the neighbor that actually starts there and
	// must sort before it for the tiling walk below.
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].Shard, sorted[j].Shard
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})

	first := sorted[0]
	// Artifacts predating the registers field carry ""; normalize to atomic
	// (what those runs actually were) before the consistency check.
	regsOf := func(r *shardReport) string {
		if r.Registers == "" {
			return register.Atomic.String()
		}
		return r.Registers
	}
	var steps, work obs.Hist
	decided := 0
	at := 0
	for _, r := range sorted {
		if r.Workload != first.Workload || r.N != first.N || r.Trials != first.Trials || r.Seed != first.Seed {
			return nil, fmt.Errorf("merge-shards: shard %d/%d is from a different run (workload/n/trials/seed mismatch)",
				r.Shard.Index, r.Shard.Of)
		}
		if regsOf(r) != regsOf(first) {
			return nil, fmt.Errorf("merge-shards: shard %d/%d ran on %s registers, others on %s",
				r.Shard.Index, r.Shard.Of, regsOf(r), regsOf(first))
		}
		if r.Shard.Lo != at {
			return nil, fmt.Errorf("merge-shards: slices do not tile the seed space: want a shard starting at %d, got [%d,%d)",
				at, r.Shard.Lo, r.Shard.Hi)
		}
		if r.Shard.Hi < r.Shard.Lo {
			return nil, fmt.Errorf("merge-shards: inverted slice [%d,%d)", r.Shard.Lo, r.Shard.Hi)
		}
		at = r.Shard.Hi
		steps.Merge(r.Steps)
		work.Merge(r.Work)
		decided += r.Decided
	}
	if at != first.Trials {
		return nil, fmt.Errorf("merge-shards: slices cover [0,%d) of %d trials", at, first.Trials)
	}
	digest, err := scalingDigest(&steps, &work, decided)
	if err != nil {
		return nil, err
	}
	manifest := obs.NewManifest("modcon-bench")
	manifest.Seed = first.Seed
	manifest.Backend = "sim"
	manifest.Registers = regsOf(first)
	manifest.Config = map[string]string{
		"merged-shards": fmt.Sprint(len(reports)),
		"trials":        fmt.Sprint(first.Trials),
		"seed":          fmt.Sprint(first.Seed),
		"registers":     regsOf(first),
	}
	return &shardReport{
		Manifest:  manifest,
		Workload:  first.Workload,
		N:         first.N,
		Trials:    first.Trials,
		Seed:      first.Seed,
		Registers: regsOf(first),
		Shard:     shardSlice{Index: 0, Of: 1, Lo: 0, Hi: first.Trials},
		Steps:     &steps,
		Work:      &work,
		Decided:   decided,
		Digest:    digest,
	}, nil
}

// emitShardReport writes the artifact as indented JSON on stdout, matching
// the other JSON emitters.
func emitShardReport(r *shardReport) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// parseShardRef parses the -shard-run "i/M" form.
func parseShardRef(s string) (index, of int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &index, &of); err != nil {
		return 0, 0, fmt.Errorf("-shard-run: want i/M, got %q", s)
	}
	if of < 1 || index < 0 || index >= of {
		return 0, 0, fmt.Errorf("-shard-run: shard %d/%d out of range", index, of)
	}
	return index, of, nil
}

// runShardRun is the -shard-run mode: execute one slice and print its
// artifact. It exists for the fan-out below to invoke, but is equally usable
// by hand for spreading shards across machines (save each shard's stdout,
// then -merge-shards the files).
func runShardRun(ref string, trials int, seed uint64, workers int, regs register.Semantics) error {
	index, of, err := parseShardRef(ref)
	if err != nil {
		return err
	}
	report, err := runShardSlice(index, of, trials, seed, workers, regs)
	if err != nil {
		return err
	}
	return emitShardReport(report)
}

// runShardFanout is the -shards M mode: spawn one -shard-run subprocess per
// shard (concurrently; each inherits the -workers cap), collect their JSON
// artifacts, merge, and print the normalized report. M = 1 degenerates to
// the merge of a single full-space shard, so the output schema — and, by the
// determinism contract, every byte outside the manifest — is independent
// of M.
func runShardFanout(shards, trials int, seed uint64, workers int, regs register.Semantics) error {
	if shards < 1 {
		return fmt.Errorf("-shards: want ≥ 1, got %d", shards)
	}
	if trials < 1 {
		return fmt.Errorf("-shards: want -trials ≥ 1, got %d", trials)
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("shards: locate own binary: %w", err)
	}
	type slot struct {
		report *shardReport
		err    error
	}
	slots := make([]slot, shards)
	done := make(chan int, shards)
	for i := 0; i < shards; i++ {
		go func(i int) {
			defer func() { done <- i }()
			cmd := exec.Command(self,
				"-shard-run", fmt.Sprintf("%d/%d", i, shards),
				"-trials", fmt.Sprint(trials),
				"-seed", fmt.Sprint(seed),
				"-workers", fmt.Sprint(workers),
				"-registers", regs.String())
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				slots[i].err = fmt.Errorf("shard %d/%d: %w", i, shards, err)
				return
			}
			var r shardReport
			if err := json.Unmarshal(out, &r); err != nil {
				slots[i].err = fmt.Errorf("shard %d/%d: bad artifact: %w", i, shards, err)
				return
			}
			slots[i].report = &r
		}(i)
	}
	for range slots {
		<-done
	}
	reports := make([]*shardReport, 0, shards)
	for i := range slots {
		if slots[i].err != nil {
			return slots[i].err
		}
		reports = append(reports, slots[i].report)
		fmt.Fprintf(os.Stderr, "shards: %d/%d [%d,%d) decided=%d %s\n",
			i, shards, slots[i].report.Shard.Lo, slots[i].report.Shard.Hi,
			slots[i].report.Decided, slots[i].report.Digest[:16])
	}
	merged, err := mergeShardReports(reports)
	if err != nil {
		return err
	}
	return emitShardReport(merged)
}

// runMergeShards is the -merge-shards mode: read saved shard artifacts,
// merge, and print the normalized report.
func runMergeShards(files string) error {
	var reports []*shardReport
	for _, name := range strings.Split(files, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		var r shardReport
		if err := json.Unmarshal(b, &r); err != nil {
			return fmt.Errorf("merge-shards: %s: %w", name, err)
		}
		reports = append(reports, &r)
	}
	merged, err := mergeShardReports(reports)
	if err != nil {
		return err
	}
	return emitShardReport(merged)
}
