package main

// -bench-scaling: measure how the pooled trial engine scales with worker
// parallelism. One cell per worker count w ∈ {1, 2, 4, …, NumCPU}: the same
// consensus sweep — same root seed, one pooled session per worker reused
// across all of its trials — runs with GOMAXPROCS and the harness worker
// count both set to w, recording wall time, throughput, speedup over w=1,
// and a digest of the aggregate histograms. The digests are the teeth of
// the determinism contract at every point on the curve: parallelism may
// move wall-clock, never the aggregates.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// scalingN is the process count of the scaling workload: big enough that a
// trial does real work, small enough that trial dispatch (the thing being
// scaled) stays visible.
const scalingN = 8

// scalingCell is one point on the scaling curve.
type scalingCell struct {
	Workers int `json:"workers"`
	// Gomaxprocs is runtime.GOMAXPROCS(0) read inside the pinned region the
	// cell actually ran under (the per-cell pin, not the launch value the
	// manifest records).
	Gomaxprocs     int     `json:"gomaxprocs"`
	Seconds        float64 `json:"seconds"`
	NsPerTrial     float64 `json:"nsPerTrial"`
	TrialsPerSec   float64 `json:"trialsPerSec"`
	AllocsPerTrial int64   `json:"allocsPerTrial"`
	// Speedup is throughput relative to the workers=1 cell.
	Speedup float64 `json:"speedup"`
	// Digest is a sha256 over the aggregate step/work histograms and the
	// decision tally; every cell of a correct run carries the same digest.
	Digest string `json:"digest"`
}

// scalingReport is the "scaling" section of BENCH_sim.json.
type scalingReport struct {
	// Workload names the sweep ("consensus-sweep"), N and TrialsPerCell its
	// shape, Seed the root seed every cell shares.
	Workload      string `json:"workload"`
	N             int    `json:"n"`
	TrialsPerCell int    `json:"trialsPerCell"`
	Seed          uint64 `json:"seed"`
	// Registers is the register model every cell ran under; non-atomic
	// models skip the lane engine but keep the same bit-identity contract.
	Registers string `json:"registers"`
	// IdenticalAggregates is true iff every cell produced the same digest —
	// the bit-identity guarantee, pre-checked so consumers need not compare.
	IdenticalAggregates bool          `json:"identicalAggregates"`
	Results             []scalingCell `json:"results"`
}

// scalingWorkerCounts returns {1, 2, 4, …} capped by (and always including)
// NumCPU.
func scalingWorkerCounts() []int {
	top := runtime.NumCPU()
	var out []int
	for w := 1; w < top; w *= 2 {
		out = append(out, w)
	}
	return append(out, top)
}

// scalingSweep builds the workload spec: full binary consensus (impatient
// conciliators, binary ratifiers, fast path) under the uniform-random
// adversary, with the mixed-input pattern the experiments use, on the regs
// register model. Build runs once per pooled session — at most `workers`
// times per cell — and its cost is amortized over every trial that session
// runs. Non-atomic models are not lane-eligible, so those cells route
// through the pooled per-trial path; the aggregates stay bit-identical at
// any worker count either way.
func scalingSweep(regs register.Semantics) harness.ProtocolSweep {
	return harness.ProtocolSweep{
		Build: func() (*core.Protocol, harness.ObjectConfig) {
			file := register.NewFile()
			proto, err := core.NewProtocol(core.Options{
				N: scalingN, File: file,
				NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
				NewConciliator: func(f *register.File, i int) core.Object {
					return conciliator.NewImpatient(f, scalingN, i)
				},
				FastPath: true,
			})
			if err != nil {
				panic(err) // construction is validated by the pre-flight build in runBenchScaling
			}
			return proto, harness.ObjectConfig{
				N: scalingN, File: file,
				Inputs:    []value.Value{0},
				Scheduler: sched.NewUniformRandom(),
				Registers: regs,
			}
		},
		Inputs: func(tr harness.Trial) []value.Value {
			inputs := make([]value.Value, scalingN)
			for p := range inputs {
				inputs[p] = value.Value((p + tr.Index) % 2)
			}
			return inputs
		},
	}
}

// runScalingCell runs the sweep at one worker count and folds the aggregate
// histograms. GOMAXPROCS is pinned to the worker count for the cell so the
// curve reflects CPU parallelism, not just pool width.
func runScalingCell(workers, trials int, seed uint64, regs register.Semantics) (scalingCell, error) {
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	// Read the pin back inside the region so the cell records the setting it
	// measurably ran under, not the value this function intended to set.
	gomaxprocs := runtime.GOMAXPROCS(0)

	var steps, work obs.Hist
	decided := 0
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := harness.SweepProtocol(
		harness.Sweep{Trials: trials, Workers: workers, Seed: seed},
		scalingSweep(regs),
		func(tr harness.Trial, run *harness.ProtocolRun) {
			steps.AddInt(run.Result.TotalWork)
			work.AddInt(run.Result.MaxIndividualWork())
			if len(run.DecidedOutputs()) == scalingN {
				decided++
			}
		})
	if err != nil {
		return scalingCell{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	digest, err := scalingDigest(&steps, &work, decided)
	if err != nil {
		return scalingCell{}, err
	}
	secs := elapsed.Seconds()
	return scalingCell{
		Workers:        workers,
		Gomaxprocs:     gomaxprocs,
		Seconds:        secs,
		NsPerTrial:     float64(elapsed.Nanoseconds()) / float64(trials),
		TrialsPerSec:   float64(trials) / secs,
		AllocsPerTrial: int64(m1.Mallocs-m0.Mallocs) / int64(trials),
		Digest:         digest,
	}, nil
}

// scalingDigest hashes the aggregate histograms (full bucket contents, via
// their canonical JSON encodings) plus the decision tally.
func scalingDigest(steps, work *obs.Hist, decided int) (string, error) {
	payload := struct {
		Steps   *obs.Hist `json:"steps"`
		Work    *obs.Hist `json:"work"`
		Decided int       `json:"decided"`
	}{steps, work, decided}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(b)), nil
}

// runBenchScaling sweeps the worker counts (explicit list, or the powers of
// two up to NumCPU) and assembles the report. Worker counts above NumCPU
// are legal — oversubscription still must not move the aggregates.
func runBenchScaling(workerCounts []int, trials int, seed uint64, regs register.Semantics) (*scalingReport, error) {
	// Pre-flight: surface a protocol-construction error as an error here so
	// the Build closure's panic is unreachable.
	spec := scalingSweep(regs)
	if _, cfg := spec.Build(); cfg.N != scalingN {
		return nil, fmt.Errorf("bench-scaling: workload built with n=%d, want %d", cfg.N, scalingN)
	}

	if len(workerCounts) == 0 {
		workerCounts = scalingWorkerCounts()
	}
	report := &scalingReport{
		Workload:            "consensus-sweep",
		N:                   scalingN,
		TrialsPerCell:       trials,
		Seed:                seed,
		Registers:           regs.String(),
		IdenticalAggregates: true,
	}
	for _, w := range workerCounts {
		cell, err := runScalingCell(w, trials, seed, regs)
		if err != nil {
			return nil, err
		}
		if len(report.Results) > 0 {
			base := report.Results[0]
			cell.Speedup = cell.TrialsPerSec / base.TrialsPerSec
			if cell.Digest != base.Digest {
				report.IdenticalAggregates = false
			}
		} else {
			cell.Speedup = 1
		}
		fmt.Fprintf(os.Stderr, "bench-scaling: workers=%-3d %8.2fs %10.0f trials/sec  speedup %.2fx  %s\n",
			cell.Workers, cell.Seconds, cell.TrialsPerSec, cell.Speedup, cell.Digest[:16])
		report.Results = append(report.Results, cell)
	}
	if !report.IdenticalAggregates {
		return report, fmt.Errorf("bench-scaling: aggregates diverged across worker counts — determinism contract broken")
	}
	return report, nil
}
