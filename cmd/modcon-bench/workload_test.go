package main

// Workload-mode correctness: merged slice artifacts must equal the
// unsharded run exactly (histograms, tally, digest, and the merged trace's
// bytes), a recorded trace must replay to identical demands, and the flag
// conflicts must error cleanly.

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/workload"
)

func workloadTestFlags(spec string, trials int, seed uint64) workloadFlags {
	return workloadFlags{
		Spec:      spec,
		Trials:    trials,
		Seed:      seed,
		Workers:   2,
		Registers: register.Atomic,
	}
}

// workloadKey flattens a report's determinism-relevant body for comparison.
func workloadKey(t testing.TB, r *workloadReport) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Workload string
		Trials   int
		Seed     uint64
		Steps    interface{}
		Work     interface{}
		Decided  int
		Trace    string
		Digest   string
	}{r.Workload, r.Trials, r.Seed, r.Steps, r.Work, r.Decided, r.Trace, r.Digest})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWorkloadSliceMergeMatchesSingleRun: in-process slices of an open-loop
// run merge — aggregates and trace alike — to exactly the unsharded run.
func TestWorkloadSliceMergeMatchesSingleRun(t *testing.T) {
	const trials, seed = 48, 9
	wf := workloadTestFlags("poisson:rate=100000", trials, seed)
	spec, err := workload.Parse(wf.Spec)
	if err != nil {
		t.Fatal(err)
	}
	full, err := runWorkloadSlice(spec, wf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 3, 5} {
		slices := make([]*workloadReport, m)
		for i := range slices {
			if slices[i], err = runWorkloadSlice(spec, wf, i, m); err != nil {
				t.Fatalf("slice %d/%d: %v", i, m, err)
			}
		}
		merged, err := mergeWorkloadReports(slices, wf)
		if err != nil {
			t.Fatalf("merge %d slices: %v", m, err)
		}
		if workloadKey(t, merged) != workloadKey(t, full) {
			t.Fatalf("M=%d: merged report diverged from the unsharded run", m)
		}
	}
}

// TestWorkloadSliceRecordReplay: a recorded slice's trace verifies against
// a re-execution of the same slice at a different worker count.
func TestWorkloadSliceRecordReplay(t *testing.T) {
	const trials, seed = 32, 4
	wf := workloadTestFlags("burst:rate=200000,on=1ms,off=3ms", trials, seed)
	spec, err := workload.Parse(wf.Spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := runWorkloadSlice(spec, wf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wf.Workers = 4
	second, err := runWorkloadSlice(spec, wf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Trace != second.Trace {
		t.Fatal("trace differs across worker counts")
	}
	tr, err := workload.Decode(strings.NewReader(first.Trace))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(mustDecodeTrace(t, second.Trace).Demands()); err != nil {
		t.Fatalf("replayed demands diverged: %v", err)
	}
	// finishWorkloadReport derives metrics from the complete trace.
	if err := finishWorkloadReport(first, ""); err != nil {
		t.Fatal(err)
	}
	if first.Metrics == nil || first.Metrics.Trials != trials {
		t.Fatalf("metrics not derived: %+v", first.Metrics)
	}
}

func mustDecodeTrace(t testing.TB, text string) *workload.Trace {
	t.Helper()
	tr, err := workload.Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWorkloadClosedCohort: closed specs run unsharded (issue times come
// from the cohort model) and refuse to shard.
func TestWorkloadClosedCohort(t *testing.T) {
	wf := workloadTestFlags("closed:clients=4,think=1ms", 24, 2)
	spec, err := workload.Parse(wf.Spec)
	if err != nil {
		t.Fatal(err)
	}
	report, err := runWorkloadSlice(spec, wf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := finishWorkloadReport(report, ""); err != nil {
		t.Fatal(err)
	}
	if report.Metrics.OfferedPerSec != 0 || report.Metrics.AchievedPerSec <= 0 {
		t.Fatalf("closed metrics off: %+v", report.Metrics)
	}
	if _, err := runWorkloadSlice(spec, wf, 0, 2); err == nil {
		t.Fatal("closed workload sharded without error")
	}
}

// TestWorkloadModeFlagConflicts pins the mode-routing errors.
func TestWorkloadModeFlagConflicts(t *testing.T) {
	for name, wf := range map[string]workloadFlags{
		"trace-in with workload": {TraceIn: "x.trace", Spec: "poisson:rate=1", Registers: register.Atomic},
		"trace-in with shards":   {TraceIn: "x.trace", Shards: 2, Registers: register.Atomic},
		"negative pace":          {Spec: "poisson:rate=1", Pace: -1, Trials: 1, Registers: register.Atomic},
		"bad spec":               {Spec: "warble:rate=1", Trials: 1, Registers: register.Atomic},
		"bad shard ref":          {Spec: "poisson:rate=1", ShardRun: "9/4", Trials: 1, Registers: register.Atomic},
	} {
		if err := runWorkloadMode(wf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
