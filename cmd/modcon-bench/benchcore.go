package main

// -bench-core: microbenchmark the simulator's step engine itself (rather
// than any experiment built on it) and emit BENCH_sim.json — the repo's
// machine-readable perf baseline for the hot path. One cell per (adversary
// power, process count): a tight write/read/probwrite loop, tracing off,
// measuring ns/step, steps/sec, and allocs/step. CI runs this with a tiny
// budget to validate the schema; real baselines use the default budget.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// benchSched is round-robin with a declared power class, so each cell
// exercises that power's view-building path without adversary-strategy cost.
type benchSched struct {
	power sched.Power
	inner *sched.RoundRobin
}

func (s *benchSched) Next(v *sched.View) int { return s.inner.Next(v) }
func (s *benchSched) Seed(src *xrand.Source) { s.inner.Seed(src) }
func (s *benchSched) Name() string           { return "bench-" + s.power.String() }
func (s *benchSched) MinPower() sched.Power  { return s.power }

// coreCell is one row of BENCH_sim.json.
type coreCell struct {
	Power         string  `json:"power"`
	N             int     `json:"n"`
	Steps         int     `json:"steps"`
	NsPerStep     float64 `json:"nsPerStep"`
	StepsPerSec   float64 `json:"stepsPerSec"`
	AllocsPerStep int64   `json:"allocsPerStep"`
	BytesPerStep  int64   `json:"bytesPerStep"`
}

// coreReport is the BENCH_sim.json schema. Consumers (CI schema check,
// trajectory tooling) rely on bench, manifest.goVersion,
// manifest.gomaxprocs, and results with the coreCell fields above; the
// scaling section (present when -bench-scaling ran) carries the
// worker-parallelism curve and its bit-identity digests.
type coreReport struct {
	Bench    string       `json:"bench"`
	Manifest obs.Manifest `json:"manifest"`
	Budget   string       `json:"budgetPerCell"`
	Results  []coreCell   `json:"results"`
	// Trial (present when -bench-core ran) holds per-trial throughput cells:
	// the same workload replayed through pooled coroutine sessions and
	// through the op-coded lane engine, with the lane cells' speedup over
	// session mode.
	Trial   *trialReport   `json:"trial,omitempty"`
	Scaling *scalingReport `json:"scaling,omitempty"`
}

// runCoreCell executes exactly `steps` scheduled operations of the step-loop
// workload under the given power and process count, tracing off.
func runCoreCell(power sched.Power, n, steps int, regs register.Semantics) error {
	f := register.NewFile()
	a := f.Alloc(n, "bench")
	prog := func(e *sim.Env) value.Value {
		r := a.At(e.PID() % a.Len)
		for i := 0; ; i++ {
			e.Write(r, value.Value(i))
			e.Read(r)
			e.ProbWrite(r, value.Value(i), 1, 2)
		}
	}
	res, err := sim.Run(sim.Config{
		N: n, File: f, Seed: 1, MaxSteps: steps,
		Scheduler: &benchSched{power: power, inner: sched.NewRoundRobin()},
		Registers: regs,
	}, prog)
	if err != nil && !errors.Is(err, sim.ErrStepLimit) {
		return err
	}
	if res.TotalWork != steps {
		return fmt.Errorf("bench-core: executed %d steps, want %d", res.TotalWork, steps)
	}
	return nil
}

// measureCoreCell grows the step count until a run fills the time budget,
// then reports the final run's per-step figures. Allocation counts are
// process-wide malloc deltas; per-run setup is amortized by the step count.
func measureCoreCell(power sched.Power, n int, budget time.Duration, regs register.Semantics) (coreCell, error) {
	steps := 50_000
	for {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := runCoreCell(power, n, steps, regs); err != nil {
			return coreCell{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if elapsed >= budget || steps >= 1<<26 {
			ns := float64(elapsed.Nanoseconds()) / float64(steps)
			return coreCell{
				Power:         power.String(),
				N:             n,
				Steps:         steps,
				NsPerStep:     ns,
				StepsPerSec:   1e9 / ns,
				AllocsPerStep: int64(m1.Mallocs-m0.Mallocs) / int64(steps),
				BytesPerStep:  int64(m1.TotalAlloc-m0.TotalAlloc) / int64(steps),
			}, nil
		}
		// Scale toward the budget, at least doubling to converge fast.
		grow := int(float64(steps) * float64(budget) / float64(elapsed+1))
		if grow < steps*2 {
			grow = steps * 2
		}
		steps = grow
	}
}

// benchOpts selects which bench modes contribute to the BENCH_sim.json
// report and their knobs.
type benchOpts struct {
	Out            string
	Core           bool          // -bench-core: the (power × n) step-loop matrix
	Scaling        bool          // -bench-scaling: the worker-parallelism curve
	Budget         time.Duration // per step-loop cell
	Ns             []int
	ScalingTrials  int
	ScalingWorkers []int // nil = auto {1, 2, 4, …, NumCPU}
	Seed           uint64
	// Registers is the register model for every bench cell (step-loop and
	// scaling); the manifest and the scaling section both attribute it.
	Registers register.Semantics
}

// runBench runs the selected microbenchmark modes and writes one combined
// JSON report: -bench-core fills results, -bench-scaling fills scaling, and
// running both yields the full baseline artifact.
func runBench(opts benchOpts) error {
	manifest := obs.NewManifest("modcon-bench")
	manifest.Seed = opts.Seed // step-loop cells always run sim.Config{Seed: 1}
	manifest.Backend = "sim"
	manifest.Registers = opts.Registers.String()
	manifest.Config = map[string]string{
		"registers":       opts.Registers.String(),
		"bench-out":       opts.Out,
		"bench-budget":    opts.Budget.String(),
		"bench-n":         intsCSV(opts.Ns),
		"bench-core":      fmt.Sprint(opts.Core),
		"bench-scaling":   fmt.Sprint(opts.Scaling),
		"scaling-trials":  fmt.Sprint(opts.ScalingTrials),
		"scaling-workers": intsCSV(opts.ScalingWorkers),
		"seed":            fmt.Sprint(opts.Seed),
	}
	report := coreReport{
		Bench:    "sim-step-loop",
		Manifest: manifest,
		Budget:   opts.Budget.String(),
		Results:  []coreCell{},
	}
	if opts.Core {
		powers := []sched.Power{
			sched.Oblivious, sched.ValueOblivious, sched.LocationOblivious, sched.Adaptive,
		}
		for _, power := range powers {
			for _, n := range opts.Ns {
				cell, err := measureCoreCell(power, n, opts.Budget, opts.Registers)
				if err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "bench-core: %-19s n=%-4d %10.1f ns/step %12.0f steps/sec %d allocs/step\n",
					cell.Power, cell.N, cell.NsPerStep, cell.StepsPerSec, cell.AllocsPerStep)
				report.Results = append(report.Results, cell)
			}
		}
		trial, err := runBenchTrials(opts.Ns, opts.Budget)
		if err != nil {
			return err
		}
		report.Trial = trial
	}
	if opts.Scaling {
		scaling, err := runBenchScaling(opts.ScalingWorkers, opts.ScalingTrials, opts.Seed, opts.Registers)
		if err != nil {
			return err
		}
		report.Scaling = scaling
	}
	f, err := os.Create(opts.Out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d step-loop cells, %d scaling cells)\n",
		opts.Out, len(report.Results), scalingCellCount(report.Scaling))
	return nil
}

// scalingCellCount is nil-safe len for the log line above.
func scalingCellCount(s *scalingReport) int {
	if s == nil {
		return 0
	}
	return len(s.Results)
}

// intsCSV renders the -bench-n list back to its csv form for the manifest.
func intsCSV(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// parseBenchNs parses the -bench-n csv.
func parseBenchNs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -bench-n entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("-bench-n is empty")
	}
	return out, nil
}
