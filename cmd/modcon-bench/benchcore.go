package main

// -bench-core: microbenchmark the simulator's step engine itself (rather
// than any experiment built on it) and emit BENCH_sim.json — the repo's
// machine-readable perf baseline for the hot path. One cell per (adversary
// power, process count): a tight write/read/probwrite loop, tracing off,
// measuring ns/step, steps/sec, and allocs/step. CI runs this with a tiny
// budget to validate the schema; real baselines use the default budget.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// benchSched is round-robin with a declared power class, so each cell
// exercises that power's view-building path without adversary-strategy cost.
type benchSched struct {
	power sched.Power
	inner *sched.RoundRobin
}

func (s *benchSched) Next(v *sched.View) int { return s.inner.Next(v) }
func (s *benchSched) Seed(src *xrand.Source) { s.inner.Seed(src) }
func (s *benchSched) Name() string           { return "bench-" + s.power.String() }
func (s *benchSched) MinPower() sched.Power  { return s.power }

// coreCell is one row of BENCH_sim.json.
type coreCell struct {
	Power         string  `json:"power"`
	N             int     `json:"n"`
	Steps         int     `json:"steps"`
	NsPerStep     float64 `json:"nsPerStep"`
	StepsPerSec   float64 `json:"stepsPerSec"`
	AllocsPerStep int64   `json:"allocsPerStep"`
	BytesPerStep  int64   `json:"bytesPerStep"`
}

// coreReport is the BENCH_sim.json schema. Consumers (CI schema check,
// trajectory tooling) rely on bench, manifest.goVersion,
// manifest.gomaxprocs, and results with the coreCell fields above.
type coreReport struct {
	Bench    string       `json:"bench"`
	Manifest obs.Manifest `json:"manifest"`
	Budget   string       `json:"budgetPerCell"`
	Results  []coreCell   `json:"results"`
}

// runCoreCell executes exactly `steps` scheduled operations of the step-loop
// workload under the given power and process count, tracing off.
func runCoreCell(power sched.Power, n, steps int) error {
	f := register.NewFile()
	a := f.Alloc(n, "bench")
	prog := func(e *sim.Env) value.Value {
		r := a.At(e.PID() % a.Len)
		for i := 0; ; i++ {
			e.Write(r, value.Value(i))
			e.Read(r)
			e.ProbWrite(r, value.Value(i), 1, 2)
		}
	}
	res, err := sim.Run(sim.Config{
		N: n, File: f, Seed: 1, MaxSteps: steps,
		Scheduler: &benchSched{power: power, inner: sched.NewRoundRobin()},
	}, prog)
	if err != nil && !errors.Is(err, sim.ErrStepLimit) {
		return err
	}
	if res.TotalWork != steps {
		return fmt.Errorf("bench-core: executed %d steps, want %d", res.TotalWork, steps)
	}
	return nil
}

// measureCoreCell grows the step count until a run fills the time budget,
// then reports the final run's per-step figures. Allocation counts are
// process-wide malloc deltas; per-run setup is amortized by the step count.
func measureCoreCell(power sched.Power, n int, budget time.Duration) (coreCell, error) {
	steps := 50_000
	for {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := runCoreCell(power, n, steps); err != nil {
			return coreCell{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if elapsed >= budget || steps >= 1<<26 {
			ns := float64(elapsed.Nanoseconds()) / float64(steps)
			return coreCell{
				Power:         power.String(),
				N:             n,
				Steps:         steps,
				NsPerStep:     ns,
				StepsPerSec:   1e9 / ns,
				AllocsPerStep: int64(m1.Mallocs-m0.Mallocs) / int64(steps),
				BytesPerStep:  int64(m1.TotalAlloc-m0.TotalAlloc) / int64(steps),
			}, nil
		}
		// Scale toward the budget, at least doubling to converge fast.
		grow := int(float64(steps) * float64(budget) / float64(elapsed+1))
		if grow < steps*2 {
			grow = steps * 2
		}
		steps = grow
	}
}

// runBenchCore runs the full (power × n) matrix and writes the JSON report.
func runBenchCore(out string, budget time.Duration, ns []int) error {
	manifest := obs.NewManifest("modcon-bench")
	manifest.Seed = 1 // every cell runs sim.Config{Seed: 1}
	manifest.Backend = "sim"
	manifest.Config = map[string]string{
		"bench-out":    out,
		"bench-budget": budget.String(),
		"bench-n":      intsCSV(ns),
	}
	report := coreReport{
		Bench:    "sim-step-loop",
		Manifest: manifest,
		Budget:   budget.String(),
	}
	powers := []sched.Power{
		sched.Oblivious, sched.ValueOblivious, sched.LocationOblivious, sched.Adaptive,
	}
	for _, power := range powers {
		for _, n := range ns {
			cell, err := measureCoreCell(power, n, budget)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "bench-core: %-19s n=%-4d %10.1f ns/step %12.0f steps/sec %d allocs/step\n",
				cell.Power, cell.N, cell.NsPerStep, cell.StepsPerSec, cell.AllocsPerStep)
			report.Results = append(report.Results, cell)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench-core: wrote %s (%d cells)\n", out, len(report.Results))
	return nil
}

// intsCSV renders the -bench-n list back to its csv form for the manifest.
func intsCSV(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// parseBenchNs parses the -bench-n csv.
func parseBenchNs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -bench-n entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("-bench-n is empty")
	}
	return out, nil
}
