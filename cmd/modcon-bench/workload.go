package main

// Open-loop workload modes: run the consensus sweep under a declarative
// arrival process, record the executed workload as a versioned tracev1
// artifact, and replay recorded traces with bit-identity verification.
//
//	modcon-bench -workload 'poisson:rate=2000;serve:servers=4' -trials 2000
//	                                  # open-loop sweep + saturation metrics
//	modcon-bench -workload ... -trace-out run.trace   # save the recording
//	modcon-bench -workload ... -shards 4              # sharded: slice traces
//	                                  # merge exactly; byte-identical to -shards 1
//	modcon-bench -trace-in run.trace                  # replay + verify
//	modcon-bench -trace-in a.trace,b.trace            # merge slices, then replay
//
// The report's body (everything outside the manifest) is identical between
// a recording run and a faithful replay of its trace — CI gates on
// `jq del(.manifest)` + cmp. A replay whose measured work diverges from
// the recording fails hard, naming the first diverging trial.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/workload"
)

// workloadFlags bundles the flag values the workload modes consume.
type workloadFlags struct {
	Spec      string // -workload (canonicalized into the report)
	TraceOut  string // -trace-out
	TraceIn   string // -trace-in (comma-separated slice files)
	Pace      float64
	Trials    int
	Seed      uint64
	Workers   int
	Shards    int
	ShardRun  string
	Registers register.Semantics
}

// workloadReport is the workload-mode JSON artifact: the shard-report
// aggregates plus the canonical spec, the inline tracev1 recording, and —
// for complete runs — the served saturation metrics.
type workloadReport struct {
	Manifest obs.Manifest `json:"manifest"`
	// Workload is the spec's canonical text; all slices of a run share it.
	Workload string `json:"workload"`
	N        int    `json:"n"`
	// Trials is the FULL seed-space size; a slice's own share is Shard.Hi-Lo.
	Trials    int        `json:"trials"`
	Seed      uint64     `json:"seed"`
	Registers string     `json:"registers"`
	Shard     shardSlice `json:"shard"`
	Steps     *obs.Hist  `json:"steps"`
	Work      *obs.Hist  `json:"work"`
	Decided   int        `json:"decided"`
	// Trace is the executed workload in the tracev1 text encoding — a slice
	// trace for shard artifacts, the complete recording after a merge.
	Trace string `json:"trace"`
	// Metrics is the virtual-time saturation summary (offered vs achieved
	// rate, latency percentiles), derived by serving the complete trace;
	// omitted on shard slices, which cannot be served alone.
	Metrics *workload.Metrics `json:"metrics,omitempty"`
	Digest  string            `json:"digest"`
}

// runWorkloadMode dispatches the workload modes: replay (-trace-in), one
// shard slice (-shard-run), sharded fan-out (-shards), or a plain run.
func runWorkloadMode(wf workloadFlags) error {
	if wf.Pace < 0 {
		return fmt.Errorf("-pace: want ≥ 0, got %v", wf.Pace)
	}
	if wf.TraceIn != "" {
		if wf.Spec != "" {
			return fmt.Errorf("-trace-in carries its own workload spec; drop -workload")
		}
		if wf.Shards > 0 || wf.ShardRun != "" {
			return fmt.Errorf("-trace-in replays in one process; drop -shards/-shard-run")
		}
		return runTraceReplay(wf)
	}
	spec, err := workload.Parse(wf.Spec)
	if err != nil {
		return fmt.Errorf("-workload: %w", err)
	}
	switch {
	case wf.ShardRun != "":
		index, of, err := parseShardRef(wf.ShardRun)
		if err != nil {
			return err
		}
		report, err := runWorkloadSlice(spec, wf, index, of)
		if err != nil {
			return err
		}
		return emitWorkloadReport(report)
	case wf.Shards > 0:
		return runWorkloadFanout(spec, wf)
	default:
		report, err := runWorkloadSlice(spec, wf, 0, 1)
		if err != nil {
			return err
		}
		if err := finishWorkloadReport(report, wf.TraceOut); err != nil {
			return err
		}
		return emitWorkloadReport(report)
	}
}

// runWorkloadSlice runs the consensus sweep open-loop over the shard's
// global slice [lo, hi) and returns its artifact with the trace slice
// inline. index 0 of 1 is the unsharded run.
func runWorkloadSlice(spec *workload.Spec, wf workloadFlags, index, of int) (*workloadReport, error) {
	if !spec.Open() && of > 1 {
		return nil, fmt.Errorf("-workload: closed (cohort) workloads are inherently sequential and cannot shard")
	}
	var arrivals []int64
	if spec.Open() {
		sched, err := spec.Schedule(wf.Seed, wf.Trials)
		if err != nil {
			return nil, fmt.Errorf("-workload: %w", err)
		}
		arrivals = sched
	}
	lo, hi := shardSpan(index, of, wf.Trials)
	demands := make([]int64, hi-lo)
	var steps, work obs.Hist
	decided := 0
	err := harness.SweepProtocol(
		harness.Sweep{Trials: hi - lo, Offset: lo, Workers: wf.Workers, Seed: wf.Seed,
			Arrivals: arrivals, Pace: wf.Pace},
		scalingSweep(wf.Registers),
		func(tr harness.Trial, run *harness.ProtocolRun) {
			demands[tr.Index-lo] = int64(run.Result.TotalWork)
			steps.AddInt(run.Result.TotalWork)
			work.AddInt(run.Result.MaxIndividualWork())
			if len(run.DecidedOutputs()) == scalingN {
				decided++
			}
		})
	if err != nil {
		return nil, err
	}
	var sliceArrivals []int64
	if spec.Open() {
		sliceArrivals = arrivals[lo:hi]
	} else {
		// Closed cohort, necessarily unsharded here: issue times come from
		// the virtual service model over the full demand vector.
		served, err := spec.Serve(nil, demands)
		if err != nil {
			return nil, err
		}
		sliceArrivals = served.Arrivals
	}
	trace, err := workload.Record(spec, wf.Seed, wf.Trials, lo, hi, sliceArrivals, demands)
	if err != nil {
		return nil, err
	}
	digest, err := scalingDigest(&steps, &work, decided)
	if err != nil {
		return nil, err
	}
	return &workloadReport{
		Manifest:  workloadManifest(spec, wf, fmt.Sprintf("%d/%d", index, of)),
		Workload:  spec.String(),
		N:         scalingN,
		Trials:    wf.Trials,
		Seed:      wf.Seed,
		Registers: wf.Registers.String(),
		Shard:     shardSlice{Index: index, Of: of, Lo: lo, Hi: hi},
		Steps:     &steps,
		Work:      &work,
		Decided:   decided,
		Trace:     encodeTrace(trace),
		Digest:    digest,
	}, nil
}

// finishWorkloadReport completes an artifact whose trace covers the full
// seed space: derive the saturation metrics by serving the trace, and
// write the trace file if requested.
func finishWorkloadReport(r *workloadReport, traceOut string) error {
	trace, err := workload.Decode(strings.NewReader(r.Trace))
	if err != nil {
		return fmt.Errorf("workload: internal: %w", err)
	}
	served, err := trace.Serve()
	if err != nil {
		return err
	}
	r.Metrics = served.Metrics
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := trace.Encode(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// runWorkloadFanout is -workload with -shards M: one -shard-run subprocess
// per slice, each emitting its artifact with its trace slice inline; the
// parent merges the aggregates and the traces exactly, serves the complete
// trace, and prints the normalized report — byte-identical (manifest
// aside) to -shards 1.
func runWorkloadFanout(spec *workload.Spec, wf workloadFlags) error {
	if wf.Shards < 1 {
		return fmt.Errorf("-shards: want ≥ 1, got %d", wf.Shards)
	}
	if wf.Trials < 1 {
		return fmt.Errorf("-shards: want -trials ≥ 1, got %d", wf.Trials)
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("workload shards: locate own binary: %w", err)
	}
	type slot struct {
		report *workloadReport
		err    error
	}
	slots := make([]slot, wf.Shards)
	done := make(chan int, wf.Shards)
	for i := 0; i < wf.Shards; i++ {
		go func(i int) {
			defer func() { done <- i }()
			cmd := exec.Command(self,
				"-workload", spec.String(),
				"-shard-run", fmt.Sprintf("%d/%d", i, wf.Shards),
				"-trials", fmt.Sprint(wf.Trials),
				"-seed", fmt.Sprint(wf.Seed),
				"-workers", fmt.Sprint(wf.Workers),
				"-pace", fmt.Sprint(wf.Pace),
				"-registers", wf.Registers.String())
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				slots[i].err = fmt.Errorf("workload shard %d/%d: %w", i, wf.Shards, err)
				return
			}
			var r workloadReport
			if err := json.Unmarshal(out, &r); err != nil {
				slots[i].err = fmt.Errorf("workload shard %d/%d: bad artifact: %w", i, wf.Shards, err)
				return
			}
			slots[i].report = &r
		}(i)
	}
	for range slots {
		<-done
	}
	reports := make([]*workloadReport, 0, wf.Shards)
	for i := range slots {
		if slots[i].err != nil {
			return slots[i].err
		}
		reports = append(reports, slots[i].report)
	}
	merged, err := mergeWorkloadReports(reports, wf)
	if err != nil {
		return err
	}
	if err := finishWorkloadReport(merged, wf.TraceOut); err != nil {
		return err
	}
	return emitWorkloadReport(merged)
}

// mergeWorkloadReports folds slice artifacts into one normalized report:
// the same exact tiling walk as mergeShardReports, plus an exact merge of
// the trace slices into the complete recording.
func mergeWorkloadReports(reports []*workloadReport, wf workloadFlags) (*workloadReport, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("workload merge: no slice reports")
	}
	sorted := append([]*workloadReport(nil), reports...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].Shard, sorted[j].Shard
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})
	first := sorted[0]
	var steps, work obs.Hist
	decided, at := 0, 0
	traces := make([]*workload.Trace, 0, len(sorted))
	for _, r := range sorted {
		if r.Workload != first.Workload || r.N != first.N || r.Trials != first.Trials ||
			r.Seed != first.Seed || r.Registers != first.Registers {
			return nil, fmt.Errorf("workload merge: slice %d/%d is from a different run",
				r.Shard.Index, r.Shard.Of)
		}
		if r.Shard.Lo != at || r.Shard.Hi < r.Shard.Lo {
			return nil, fmt.Errorf("workload merge: slices do not tile the seed space: want a slice starting at %d, got [%d,%d)",
				at, r.Shard.Lo, r.Shard.Hi)
		}
		at = r.Shard.Hi
		steps.Merge(r.Steps)
		work.Merge(r.Work)
		decided += r.Decided
		tr, err := workload.Decode(strings.NewReader(r.Trace))
		if err != nil {
			return nil, fmt.Errorf("workload merge: slice %d/%d trace: %w", r.Shard.Index, r.Shard.Of, err)
		}
		traces = append(traces, tr)
	}
	if at != first.Trials {
		return nil, fmt.Errorf("workload merge: slices cover [0,%d) of %d trials", at, first.Trials)
	}
	mergedTrace, err := workload.Merge(traces...)
	if err != nil {
		return nil, fmt.Errorf("workload merge: %w", err)
	}
	digest, err := scalingDigest(&steps, &work, decided)
	if err != nil {
		return nil, err
	}
	spec, err := mergedTrace.ParseSpec()
	if err != nil {
		return nil, err
	}
	return &workloadReport{
		Manifest:  workloadManifest(spec, wf, "0/1"),
		Workload:  first.Workload,
		N:         first.N,
		Trials:    first.Trials,
		Seed:      first.Seed,
		Registers: first.Registers,
		Shard:     shardSlice{Index: 0, Of: 1, Lo: 0, Hi: first.Trials},
		Steps:     &steps,
		Work:      &work,
		Decided:   decided,
		Trace:     encodeTrace(mergedTrace),
		Digest:    digest,
	}, nil
}

// runTraceReplay is the -trace-in mode: read the trace files (shard slices
// or a complete recording), merge them, re-run the sweep the trace
// describes, and verify every trial's measured work against the recording.
// The emitted report is byte-identical (manifest aside) to the recording
// run's report.
func runTraceReplay(wf workloadFlags) error {
	var parts []*workload.Trace
	for _, name := range strings.Split(wf.TraceIn, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		tr, err := workload.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("-trace-in: %s: %w", name, err)
		}
		parts = append(parts, tr)
	}
	if len(parts) == 0 {
		return fmt.Errorf("-trace-in: no trace files")
	}
	trace := parts[0]
	if len(parts) > 1 || !trace.Complete() {
		merged, err := workload.Merge(parts...)
		if err != nil {
			return fmt.Errorf("-trace-in: %w", err)
		}
		trace = merged
	}
	spec, err := trace.ParseSpec()
	if err != nil {
		return fmt.Errorf("-trace-in: %w", err)
	}
	if wf.Seed != 1 && wf.Seed != trace.Seed { // 1 is the flag default
		return fmt.Errorf("-trace-in: trace was recorded with -seed %d; drop the conflicting -seed %d", trace.Seed, wf.Seed)
	}
	wf.Seed, wf.Trials = trace.Seed, trace.Trials // the trace is authoritative
	var arrivals []int64
	if spec.Open() {
		arrivals = trace.Arrivals()
	}
	demands := make([]int64, trace.Trials)
	var steps, work obs.Hist
	decided := 0
	err = harness.SweepProtocol(
		harness.Sweep{Trials: trace.Trials, Workers: wf.Workers, Seed: trace.Seed,
			Arrivals: arrivals, Pace: wf.Pace},
		scalingSweep(wf.Registers),
		func(tr harness.Trial, run *harness.ProtocolRun) {
			demands[tr.Index] = int64(run.Result.TotalWork)
			steps.AddInt(run.Result.TotalWork)
			work.AddInt(run.Result.MaxIndividualWork())
			if len(run.DecidedOutputs()) == scalingN {
				decided++
			}
		})
	if err != nil {
		return err
	}
	if err := trace.Verify(demands); err != nil {
		return fmt.Errorf("trace replay diverged (different binary, registers model, or tampered trace?): %w", err)
	}
	digest, err := scalingDigest(&steps, &work, decided)
	if err != nil {
		return err
	}
	report := &workloadReport{
		Manifest:  workloadManifest(spec, wf, "0/1"),
		Workload:  spec.String(),
		N:         scalingN,
		Trials:    trace.Trials,
		Seed:      trace.Seed,
		Registers: wf.Registers.String(),
		Shard:     shardSlice{Index: 0, Of: 1, Lo: 0, Hi: trace.Trials},
		Steps:     &steps,
		Work:      &work,
		Decided:   decided,
		Trace:     encodeTrace(trace),
		Digest:    digest,
	}
	if err := finishWorkloadReport(report, wf.TraceOut); err != nil {
		return err
	}
	return emitWorkloadReport(report)
}

// workloadManifest builds the artifact manifest, stamping the canonical
// workload spec both in its dedicated field and the config echo.
func workloadManifest(spec *workload.Spec, wf workloadFlags, shard string) obs.Manifest {
	m := obs.NewManifest("modcon-bench")
	m.Seed = wf.Seed
	m.Backend = "sim"
	m.Registers = wf.Registers.String()
	m.Workload = spec.String()
	m.Config = map[string]string{
		"workload":  spec.String(),
		"shard":     shard,
		"trials":    fmt.Sprint(wf.Trials),
		"seed":      fmt.Sprint(wf.Seed),
		"workers":   fmt.Sprint(wf.Workers),
		"pace":      fmt.Sprint(wf.Pace),
		"registers": wf.Registers.String(),
		"trace-in":  wf.TraceIn,
	}
	return m
}

// encodeTrace renders a trace in its text encoding; the encoding only
// fails on invalid traces, which Record/Merge never produce.
func encodeTrace(t *workload.Trace) string {
	var buf bytes.Buffer
	if err := t.Encode(&buf); err != nil {
		panic(fmt.Sprintf("workload: encode recorded trace: %v", err))
	}
	return buf.String()
}

func emitWorkloadReport(r *workloadReport) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
