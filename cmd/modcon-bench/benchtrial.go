package main

// Per-trial throughput cells for -bench-core: the same write/probwrite/read
// trial workload measured two ways — replayed through a pooled coroutine
// session (one exec.Session.Run per trial) and through the op-coded lane
// engine (whole lanes per exec.BatchSession.RunBatch call). The lane cells'
// Speedup column is the artifact form of the repo's lane-vs-session claim;
// the differential tests in internal/sim and internal/harness pin that both
// modes compute bit-identical results, so the cells differ only in cost.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
)

// trialOps is the iteration count of the trial workload: 64 iterations × 3
// scheduled ops per process, enough work that a trial is not just engine
// arming, small enough that per-trial dispatch stays visible.
const trialOps = 64

// trialCell is one row of the "trial" section of BENCH_sim.json.
type trialCell struct {
	// Mode is "session" (pooled coroutine session, one Run per trial) or
	// "lane" (op-coded lane engine, whole lanes per RunBatch call).
	Mode           string  `json:"mode"`
	N              int     `json:"n"`
	Trials         int     `json:"trials"`
	NsPerTrial     float64 `json:"nsPerTrial"`
	TrialsPerSec   float64 `json:"trialsPerSec"`
	AllocsPerTrial int64   `json:"allocsPerTrial"`
	// Speedup is this cell's throughput over the session cell at the same n
	// (1 for session cells themselves).
	Speedup float64 `json:"speedup"`
}

// trialReport is the "trial" section of BENCH_sim.json.
type trialReport struct {
	Workload    string      `json:"workload"`
	OpsPerTrial int         `json:"opsPerTrial"`
	LaneWidth   int         `json:"laneWidth"`
	Results     []trialCell `json:"results"`
}

// trialProgram is the coroutine form of the trial workload: per iteration a
// write, a probabilistic write whose success feeds the accumulator, and a
// read folded mod 3.
func trialProgram(a register.Array) exec.Program {
	return func(e core.Env) value.Value {
		r := a.At(e.PID() % a.Len)
		var acc value.Value
		for i := 0; i < trialOps; i++ {
			e.Write(r, value.Value(i))
			if e.ProbWrite(r, value.Value(i+100), 1, 2) {
				acc++
			}
			acc += e.Read(r) % 3
		}
		return acc
	}
}

// trialProc is the op-coded twin of trialProgram, one state per scheduled
// operation. Differential coverage for this pairing pattern lives in
// internal/sim's lane tests; this copy exists only to be timed.
type trialProc struct {
	r       register.Reg
	pc, i   int
	acc     value.Value
	halting bool
}

func (p *trialProc) Reset() { p.pc, p.i, p.acc, p.halting = 0, 0, 0, false }

func (p *trialProc) Step(e *sim.LaneEnv) bool {
	switch p.pc {
	case 0: // issue Write(i)
		if p.halting {
			e.Out = p.acc
			return false
		}
		e.Op = sim.LaneOp{Kind: sched.OpWrite, Reg: p.r, Val: value.Value(p.i)}
		p.pc = 1
	case 1: // issue ProbWrite(i+100, 1, 2)
		e.Op = sim.LaneOp{Kind: sched.OpProbWrite, Reg: p.r, Val: value.Value(p.i + 100), Num: 1, Den: 2}
		p.pc = 2
	case 2: // consume ProbWrite's ok; issue Read
		if e.ROK {
			p.acc++
		}
		e.Op = sim.LaneOp{Kind: sched.OpRead, Reg: p.r}
		p.pc = 3
	case 3: // consume Read's value; next iteration's Write or halt
		p.acc += e.RVal % 3
		p.i++
		if p.i == trialOps {
			p.halting = true
		}
		p.pc = 0
		return p.Step(e)
	}
	return true
}

// trialSessions builds the two sessions under measurement over identical
// cells: same register file image, same scheduler construction, same config.
func trialSessions(n int) (session exec.Session, lane exec.BatchSession, err error) {
	mkCfg := func() (exec.Config, register.Array) {
		f := register.NewFile()
		a := f.Alloc(n, "bench-trial")
		return exec.Config{N: n, File: f, Scheduler: sched.NewUniformRandom(), MaxSteps: 1 << 20}, a
	}
	cfg, a := mkCfg()
	session, err = sim.Backend().NewSession(cfg, trialProgram(a))
	if err != nil {
		return nil, nil, err
	}
	cfg, a = mkCfg()
	lane, err = sim.NewLaneSession(cfg, func(pid, n int) sim.LaneProc {
		return &trialProc{r: a.At(pid % a.Len)}
	})
	if err != nil {
		session.Close()
		return nil, nil, err
	}
	return session, lane, nil
}

// measureTrials times `trials` executions through run (which covers seeds
// [1, trials]) with process-wide malloc deltas, growing the count until the
// budget fills so short budgets still converge.
func measureTrials(mode string, n int, budget time.Duration,
	run func(trials int) error) (trialCell, error) {
	trials := 256
	for {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := run(trials); err != nil {
			return trialCell{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if elapsed >= budget || trials >= 1<<22 {
			ns := float64(elapsed.Nanoseconds()) / float64(trials)
			return trialCell{
				Mode:           mode,
				N:              n,
				Trials:         trials,
				NsPerTrial:     ns,
				TrialsPerSec:   1e9 / ns,
				AllocsPerTrial: int64(m1.Mallocs-m0.Mallocs) / int64(trials),
			}, nil
		}
		grow := int(float64(trials) * float64(budget) / float64(elapsed+1))
		if grow < trials*2 {
			grow = trials * 2
		}
		trials = grow
	}
}

// runBenchTrials measures the session and lane cells for each n and returns
// the report. Both modes replay the identical deterministic seed sequence;
// the lane mode batches it laneWidth seeds per RunBatch call.
func runBenchTrials(ns []int, budget time.Duration) (*trialReport, error) {
	const laneWidth = 64
	report := &trialReport{
		Workload:    "write-probwrite-read",
		OpsPerTrial: 3 * trialOps,
		LaneWidth:   laneWidth,
		Results:     []trialCell{},
	}
	ctx := context.Background()
	for _, n := range ns {
		session, lane, err := trialSessions(n)
		if err != nil {
			return nil, err
		}
		sessionCell, err := measureTrials("session", n, budget, func(trials int) error {
			for t := 1; t <= trials; t++ {
				if _, err := session.Run(ctx, uint64(t)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			session.Close()
			lane.Close()
			return nil, err
		}
		seeds := make([]uint64, laneWidth)
		laneCell, err := measureTrials("lane", n, budget, func(trials int) error {
			for done := 0; done < trials; done += len(seeds) {
				seeds = seeds[:min(laneWidth, trials-done)]
				for j := range seeds {
					seeds[j] = uint64(done+j) + 1
				}
				var trialErr error
				err := lane.RunBatch(ctx, seeds, nil, func(k int, res *exec.Result, err error) bool {
					trialErr = err
					return err == nil
				})
				if err == nil {
					err = trialErr
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		session.Close()
		lane.Close()
		if err != nil {
			return nil, err
		}
		sessionCell.Speedup = 1
		laneCell.Speedup = laneCell.TrialsPerSec / sessionCell.TrialsPerSec
		for _, cell := range []trialCell{sessionCell, laneCell} {
			fmt.Fprintf(os.Stderr, "bench-trial: %-8s n=%-4d %10.1f ns/trial %10.0f trials/sec %d allocs/trial  %.2fx\n",
				cell.Mode, cell.N, cell.NsPerTrial, cell.TrialsPerSec, cell.AllocsPerTrial, cell.Speedup)
			report.Results = append(report.Results, cell)
		}
	}
	return report, nil
}
