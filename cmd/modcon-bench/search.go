package main

// -search: run the adversary-synthesis engine (internal/advsearch) as a
// standalone mode and print a JSON artifact. The workload is the same full
// binary-consensus cell the scaling benchmark uses (n=8, impatient
// conciliators, binary ratifiers, fast path, mixed inputs), so searched
// adversaries are directly comparable across artifacts. Two submodes:
//
//   - search (default): spend -search-budget trials finding a worst-case
//     scheduler in the -search-power class, stamping the full search
//     provenance (algorithm, objective, budget, seed) into the manifest.
//   - replay (-search-replay '<config>'): re-evaluate one previously found
//     parametric config at the same per-evaluation budget. Replay output is
//     bit-identical at any -workers for the same -seed, which is how a
//     found adversary is verified from the artifact alone.
//
// The artifact is reproducible from its manifest: every -search-* flag is
// echoed under manifest.config, and roundTrip records that the winner (or
// replayed) config survives a parse→print cycle of the text codec.

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/modular-consensus/modcon/internal/advsearch"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// searchDefaultEvals sizes the default budget in evaluations when
// -search-budget is 0, matching E22's per-class depth.
const searchDefaultEvals = 96

// searchFlags carries the -search-* flag values into runSearch.
type searchFlags struct {
	Power     string // -search-power: class to search or replay in
	Algo      string // -search-algo: random | evolve | halving
	Objective string // -search-objective: work | violations
	Budget    int    // -search-budget: total trials (0 = 96 evaluations' worth)
	Trials    int    // -search-trials: trials per evaluation (0 = 48)
	Replay    string // -search-replay: parametric config to re-evaluate instead of searching
	Seed      uint64
	Workers   int
}

// searchArtifact is the -search output schema: a run manifest, then either
// the full search report or the single replay evaluation.
type searchArtifact struct {
	Manifest obs.Manifest      `json:"manifest"`
	Search   *advsearch.Report `json:"search,omitempty"`
	Replay   *advsearch.Eval   `json:"replay,omitempty"`
	// RoundTrip is true iff the winner (or replayed) config parses back and
	// re-prints to the same text — the codec invariant CI gates on.
	RoundTrip bool `json:"roundTrip"`
}

// searchTarget adapts the scaling workload to the search engine's target
// shape: the scheduler under test replaces the sweep's fixed adversary.
func searchTarget(regs register.Semantics) advsearch.Target {
	return advsearch.Target{
		Name:      fmt.Sprintf("binary-consensus/n=%d", scalingN),
		N:         scalingN,
		Registers: regs,
		Build: func() (*core.Protocol, *register.File) {
			file := register.NewFile()
			proto, err := core.NewProtocol(core.Options{
				N: scalingN, File: file,
				NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
				NewConciliator: func(f *register.File, i int) core.Object {
					return conciliator.NewImpatient(f, scalingN, i)
				},
				FastPath: true,
			})
			if err != nil {
				panic(err)
			}
			return proto, file
		},
		Inputs: func(tr harness.Trial) []value.Value {
			inputs := make([]value.Value, scalingN)
			for p := range inputs {
				inputs[p] = value.Value((p + tr.Index) % 2)
			}
			return inputs
		},
	}
}

// runSearch executes one search or replay and prints the artifact on
// stdout. Replay failures (an unparseable config) are flag errors;
// degraded candidates inside a search surface as quarantined entries in
// the report, never as process failures.
func runSearch(flags searchFlags, regs register.Semantics) error {
	power, err := sched.ParsePower(flags.Power)
	if err != nil {
		return fmt.Errorf("-search-power: %w", err)
	}
	trials := flags.Trials
	if trials <= 0 {
		trials = 48
	}
	budget := flags.Budget
	if budget <= 0 {
		budget = searchDefaultEvals * trials
	}
	opts := advsearch.Options{
		Algo:          advsearch.Algo(flags.Algo),
		Objective:     advsearch.Objective(flags.Objective),
		Power:         power,
		Budget:        budget,
		TrialsPerEval: trials,
		Seed:          flags.Seed,
		Workers:       flags.Workers,
	}
	target := searchTarget(regs)

	artifact := searchArtifact{Manifest: searchManifest(flags, regs, budget, trials)}
	if flags.Replay != "" {
		if _, err := sched.NewParametricFromString(flags.Replay); err != nil {
			return fmt.Errorf("-search-replay: %w", err)
		}
		ev := advsearch.EvaluateScheduler(target, opts, flags.Replay,
			func() (sched.Scheduler, error) { return sched.NewParametricFromString(flags.Replay) })
		artifact.Replay = &ev
		artifact.RoundTrip = configRoundTrips(flags.Replay)
	} else {
		report, err := advsearch.Search(target, opts)
		if err != nil {
			return err
		}
		artifact.Search = report
		if report.Winner != nil {
			artifact.RoundTrip = configRoundTrips(report.Winner.Config)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(artifact)
}

// configRoundTrips reports whether a parametric config survives
// parse→print unchanged.
func configRoundTrips(config string) bool {
	back, err := sched.ParseParametric(config)
	return err == nil && back.String() == config
}

// searchManifest stamps the search provenance: every flag that affects the
// result, echoed under config so the artifact reproduces itself.
func searchManifest(flags searchFlags, regs register.Semantics, budget, trials int) obs.Manifest {
	m := obs.NewManifest("modcon-bench")
	m.Seed = flags.Seed
	m.Backend = "sim"
	m.Registers = regs.String()
	algo, objective := flags.Algo, flags.Objective
	if algo == "" {
		algo = string(advsearch.AlgoEvolve)
	}
	if objective == "" {
		objective = string(advsearch.MaximizeWork)
	}
	m.Config = map[string]string{
		"search":           "true",
		"search-power":     flags.Power,
		"search-algo":      algo,
		"search-objective": objective,
		"search-budget":    fmt.Sprint(budget),
		"search-trials":    fmt.Sprint(trials),
		"search-replay":    flags.Replay,
		"seed":             fmt.Sprint(flags.Seed),
		"workers":          fmt.Sprint(flags.Workers),
		"registers":        regs.String(),
	}
	return m
}
