package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E5", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-run", "E9", "-trials", "2", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunJSON(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "E9", "-trials", "2", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ID": "E9"`) || !strings.Contains(out, `"Rows"`) {
		t.Fatalf("json output missing table fields:\n%s", out)
	}
}

func TestRunWorkersDeterministic(t *testing.T) {
	var outs []string
	for _, w := range []string{"1", "4"} {
		out, err := capture(t, func() error {
			return run([]string{"-run", "E9", "-trials", "4", "-seed", "3", "-workers", w, "-json"})
		})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	if outs[0] != outs[1] {
		t.Fatalf("-workers changed results:\n%s\n---\n%s", outs[0], outs[1])
	}
}

func TestRunTimeoutCancels(t *testing.T) {
	_, err := capture(t, func() error {
		return run([]string{"-run", "E1", "-trials", "400", "-timeout", "1ns"})
	})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
}
