package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E5", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-run", "E9", "-trials", "2", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunJSON(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "E9", "-trials", "2", "-seed", "42", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Manifest struct {
			Tool       string            `json:"tool"`
			Seed       uint64            `json:"seed"`
			Config     map[string]string `json:"config"`
			GoVersion  string            `json:"goVersion"`
			GOMAXPROCS int               `json:"gomaxprocs"`
		} `json:"manifest"`
		Tables []json.RawMessage `json:"tables"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("json output does not decode: %v\n%s", err, out)
	}
	m := report.Manifest
	if m.Tool != "modcon-bench" || m.Seed != 42 || m.GoVersion == "" || m.GOMAXPROCS < 1 {
		t.Fatalf("bad manifest: %+v", m)
	}
	if m.Config["run"] != "E9" || m.Config["trials"] != "2" {
		t.Fatalf("manifest config echo missing flags: %+v", m.Config)
	}
	if len(report.Tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(report.Tables))
	}
	if !strings.Contains(out, `"ID": "E9"`) || !strings.Contains(out, `"Rows"`) {
		t.Fatalf("json output missing table fields:\n%s", out)
	}
}

func TestRunWorkersDeterministic(t *testing.T) {
	// The manifest legitimately differs across worker counts (it echoes
	// -workers), so determinism is pinned on the tables alone.
	var tables []string
	for _, w := range []string{"1", "4"} {
		out, err := capture(t, func() error {
			return run([]string{"-run", "E9", "-trials", "4", "-seed", "3", "-workers", w, "-json"})
		})
		if err != nil {
			t.Fatal(err)
		}
		var report struct {
			Tables json.RawMessage `json:"tables"`
		}
		if err := json.Unmarshal([]byte(out), &report); err != nil {
			t.Fatalf("json output does not decode: %v\n%s", err, out)
		}
		tables = append(tables, string(report.Tables))
	}
	if tables[0] != tables[1] {
		t.Fatalf("-workers changed results:\n%s\n---\n%s", tables[0], tables[1])
	}
}

func TestRunBenchScaling(t *testing.T) {
	out := filepath.Join(t.TempDir(), "scaling.json")
	if err := run([]string{"-bench-scaling", "-scaling-trials", "16", "-scaling-workers", "1,2", "-bench-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Scaling struct {
			Workload            string `json:"workload"`
			TrialsPerCell       int    `json:"trialsPerCell"`
			IdenticalAggregates bool   `json:"identicalAggregates"`
			Results             []struct {
				Workers int    `json:"workers"`
				Digest  string `json:"digest"`
			} `json:"results"`
		} `json:"scaling"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("scaling artifact does not decode: %v\n%s", err, data)
	}
	s := report.Scaling
	if s.Workload != "consensus-sweep" || s.TrialsPerCell != 16 || len(s.Results) != 2 {
		t.Fatalf("bad scaling section: %+v", s)
	}
	if !s.IdenticalAggregates || s.Results[0].Digest != s.Results[1].Digest {
		t.Fatalf("aggregates diverged across worker counts: %+v", s)
	}
	if s.Results[0].Workers != 1 || s.Results[1].Workers != 2 {
		t.Fatalf("worker counts not honored: %+v", s)
	}
}

func TestRunProgressAndProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	_, err := capture(t, func() error {
		return run([]string{"-run", "E9", "-trials", "2",
			"-progress", "1ms", "-cpuprofile", cpu, "-memprofile", mem, "-trace", tr})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s not written: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunTimeoutCancels(t *testing.T) {
	_, err := capture(t, func() error {
		return run([]string{"-run", "E1", "-trials", "400", "-timeout", "1ns"})
	})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
}
