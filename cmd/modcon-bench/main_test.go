package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E5", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-run", "E9", "-trials", "2", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
}
