// Command doccheck enforces the repo's godoc coverage policy:
//
//   - every package (root, internal/..., cmd/..., examples/...) must have a
//     package comment, and
//   - every exported symbol of the public API (the root package) must have a
//     doc comment.
//
// It exits nonzero listing each violation, so CI can gate on documentation
// the same way it gates on tests. Run it from the module root:
//
//	go run ./cmd/doccheck
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doccheck:", p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// check walks every Go package directory under root and returns the list of
// documentation violations.
func check(root string) ([]string, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, dir := range sortedKeys(dirs) {
		ps, err := checkDir(root, dir)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

// checkDir validates one package directory: the package comment always, and
// exported-symbol docs for the public (root) package.
func checkDir(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, pkg := range pkgs {
		if !hasPackageComment(pkg) {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		// Exported-symbol coverage is enforced for the public API surface:
		// the module root package.
		if filepath.Clean(dir) == filepath.Clean(root) {
			problems = append(problems, checkExported(fset, pkg)...)
		}
	}
	return problems, nil
}

// hasPackageComment reports whether any file in the package documents the
// package clause.
func hasPackageComment(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// checkExported returns a violation for every exported top-level symbol
// without a doc comment. Grouped declarations pass if either the group or
// the individual spec is documented.
func checkExported(fset *token.FileSet, pkg *ast.Package) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods are covered by their receiver type's docs policy;
				// only exported methods on exported receivers are checked.
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				report(d.Pos(), "function", d.Name.Name)
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						documented := groupDoc || s.Doc != nil || s.Comment != nil
						for _, n := range s.Names {
							if n.IsExported() && !documented {
								report(s.Pos(), "value", n.Name)
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
