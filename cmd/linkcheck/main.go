// Command linkcheck validates the relative links in the repo's markdown
// files: every `[text](path)` whose target is not an external URL or a pure
// anchor must resolve to an existing file or directory, relative to the file
// containing the link.
//
// It exits nonzero listing each broken link, so CI can gate documentation
// structure the same way it gates code. Run it from the module root:
//
//	go run ./cmd/linkcheck
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links; images share the same target syntax.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, checked, err := run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, "linkcheck:", b)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: ok (%d relative links)\n", checked)
}

// run scans every .md file under root and returns the broken relative links
// and the count of links checked.
func run(root string) (broken []string, checked int, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		// SNIPPETS.md quotes exemplar code and docs from other repositories
		// verbatim; its links refer to files in their origin repos.
		if d.Name() == "SNIPPETS.md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			// Drop any #anchor; section anchors are not validated.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			checked++
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s: link target %q does not exist", path, m[1]))
			}
		}
		return nil
	})
	return broken, checked, err
}

// skippable reports link targets outside the checker's scope: absolute URLs
// and pure in-page anchors.
func skippable(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
