package main

import (
	"os"
	"testing"
)

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-n", "3", "-seed", "2", "-summary"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitInputs(t *testing.T) {
	if err := run([]string{"-n", "3", "-m", "3", "-inputs", "2,0,1", "-summary"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInputCountMismatch(t *testing.T) {
	if err := run([]string{"-n", "3", "-inputs", "0,1"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadInput(t *testing.T) {
	if err := run([]string{"-n", "2", "-inputs", "0,x"}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRunAllAdversaries(t *testing.T) {
	for _, adv := range []string{
		"round-robin", "uniform-random", "lockstep", "frontrunner",
		"first-mover-attack", "eager-write-attack", "split-vote",
		"adaptive-spoiler", "noisy", "priority",
	} {
		if err := run([]string{"-n", "2", "-adversary", adv, "-summary", "-seed", "5"}); err != nil {
			t.Fatalf("%s: %v", adv, err)
		}
	}
}

func TestRunUnknownAdversary(t *testing.T) {
	if err := run([]string{"-adversary", "byzantine"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunJSONExport(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	if err := run([]string{"-n", "2", "-summary", "-json", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
