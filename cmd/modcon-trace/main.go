// Command modcon-trace runs a single consensus execution and prints the
// full operation-level trace: every read, write, probabilistic write (with
// its coin), local coin flip, object invocation, and decision, in the exact
// order the adversary scheduled them.
//
// Usage:
//
//	modcon-trace -n 4 -m 2 -adversary first-mover-attack -seed 7
//	modcon-trace -n 3 -inputs 2,0,1 -m 3 -adversary uniform-random
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/modular-consensus/modcon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modcon-trace:", err)
		os.Exit(1)
	}
}

func newAdversary(name string, sigma float64) (modcon.Scheduler, error) {
	switch name {
	case "round-robin":
		return modcon.NewRoundRobin(), nil
	case "uniform-random":
		return modcon.NewUniformRandom(), nil
	case "lockstep":
		return modcon.NewLaggard(), nil
	case "frontrunner":
		return modcon.NewFrontrunner(), nil
	case "first-mover-attack":
		return modcon.NewFirstMoverAttack(), nil
	case "eager-write-attack":
		return modcon.NewEagerWriteAttack(), nil
	case "split-vote":
		return modcon.NewSplitVote(), nil
	case "adaptive-spoiler":
		return modcon.NewAdaptiveSpoiler(), nil
	case "noisy":
		return modcon.NewNoisy(sigma), nil
	case "priority":
		return modcon.NewPriority(nil), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modcon-trace", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 4, "number of processes")
		m       = fs.Int("m", 2, "number of values")
		inputs  = fs.String("inputs", "", "comma-separated inputs (default: i mod m)")
		adv     = fs.String("adversary", "uniform-random", "adversary scheduler")
		sigma   = fs.Float64("sigma", 0.3, "noisy scheduler jitter")
		seed    = fs.Uint64("seed", 1, "seed")
		quiet   = fs.Bool("summary", false, "print only the summary")
		maxOps  = fs.Int("max-steps", 0, "step limit (0 = default)")
		nostage = fs.Bool("no-stages", false, "hide per-process stage summary")
		jsonOut = fs.String("json", "", "also write the trace as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := make([]modcon.Value, *n)
	for i := range in {
		in[i] = modcon.Value(i % *m)
	}
	if *inputs != "" {
		parts := strings.Split(*inputs, ",")
		if len(parts) != *n {
			return fmt.Errorf("-inputs has %d values for n=%d", len(parts), *n)
		}
		for i, p := range parts {
			x, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return fmt.Errorf("bad input %q: %w", p, err)
			}
			in[i] = modcon.Value(x)
		}
	}

	scheduler, err := newAdversary(*adv, *sigma)
	if err != nil {
		return err
	}
	cons, err := modcon.New(*n, *m)
	if err != nil {
		return err
	}
	out, err := cons.Solve(in, scheduler, *seed, modcon.RunConfig{Traced: true, MaxSteps: *maxOps})
	if err != nil {
		return err
	}

	if !*quiet {
		fmt.Print(out.Trace)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := out.Trace.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *jsonOut)
	}
	fmt.Printf("\ninputs:     %v\n", in)
	fmt.Printf("decided:    %s\n", out.Value)
	fmt.Printf("total work: %d ops, individual work: %d ops\n", out.TotalWork, out.MaxWork())
	if !*nostage {
		for pid := range out.Outputs {
			where := fmt.Sprintf("stage %d", out.Stage[pid])
			if out.Stage[pid] == 0 {
				where = "fast path"
			}
			if out.FellBack[pid] {
				where = "fallback K"
			}
			fmt.Printf("p%-3d decided %s at %s after %d ops\n",
				pid, out.Outputs[pid], where, out.Work[pid])
		}
	}
	return nil
}
