package modcon

import (
	"github.com/modular-consensus/modcon/internal/multi"
)

// SequenceOutcome reports a multi-slot consensus run (a replicated log).
type SequenceOutcome struct {
	// Agreed holds the decided value of each slot.
	Agreed []Value
	// Outputs is indexed [slot][pid] (None where pid never decided a slot,
	// e.g. after crashing).
	Outputs [][]Value
	// Crashed reports per-process crashes.
	Crashed []bool
	// Work and TotalWork cover the whole execution.
	Work      []int
	TotalWork int
}

// SolveSequence runs len(proposals) consensus instances — one per log slot
// — inside a *single* adversarial execution: every process walks the slots
// in order, so a fast process may be several slots ahead of a slow one,
// exactly as in a long-lived replicated state machine. proposals is indexed
// [slot][pid] (or [slot][0] broadcast to all processes); per-slot agreement
// and validity are verified before returning.
//
// The per-slot protocol follows this spec's n and m with the paper-default
// assembly plus the CIL fallback (slots always decide); the spec's other
// options currently do not apply to sequences.
func (c *Consensus) SolveSequence(proposals [][]Value, s Scheduler, seed uint64, run ...RunConfig) (*SequenceOutcome, error) {
	var rc RunConfig
	if len(run) == 1 {
		rc = run[0]
	}
	expanded := make([][]Value, len(proposals))
	for slot, props := range proposals {
		if len(props) == 1 && c.n > 1 {
			row := make([]Value, c.n)
			for i := range row {
				row[i] = props[0]
			}
			expanded[slot] = row
			continue
		}
		expanded[slot] = props
	}
	res, err := multi.Run(multi.Config{
		N: c.n, M: c.m,
		Proposals:  expanded,
		Scheduler:  s,
		Seed:       seed,
		MaxSteps:   rc.MaxSteps,
		CrashAfter: rc.CrashAfter,
		Faults:     rc.Faults,
		Context:    rc.Context,
	})
	if err != nil {
		return nil, err
	}
	return &SequenceOutcome{
		Agreed:    res.Agreed,
		Outputs:   res.Outputs,
		Crashed:   res.Crashed,
		Work:      res.Work,
		TotalWork: res.TotalWork,
	}, nil
}
