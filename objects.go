package modcon

import (
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/adoptcommit"
	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/setagree"
	"github.com/modular-consensus/modcon/internal/sharedcoin"
	"github.com/modular-consensus/modcon/internal/tas"
	"github.com/modular-consensus/modcon/internal/trace"
)

// This file exposes the paper's individual objects so users can assemble
// protocols of their own — the whole point of the modular decomposition.
// Objects are one-shot: construct fresh instances per execution, all
// against the same register file, and run them with Simulate.

// NewImpatientConciliator allocates the paper's conciliator for n processes
// (Theorem 7) in file: one register, agreement probability ≥ (1-e^{-1/4})/4
// against any location-oblivious adversary, O(log n) individual work.
// Arbitrary non-negative input values are supported.
func NewImpatientConciliator(file *Registers, n, index int) Object {
	return conciliator.NewImpatient(file, n, index)
}

// NewConstantRateConciliator allocates the Chor–Israeli–Li / Cheung
// baseline conciliator (Θ(1/n) write probability, Θ(n) individual work).
func NewConstantRateConciliator(file *Registers, n, index int) Object {
	return conciliator.NewConstantRate(file, n, index)
}

// NewCoinConciliator allocates the 2-valued conciliator of Theorem 6 over a
// voting weak shared coin for n processes.
func NewCoinConciliator(file *Registers, n, index int) Object {
	return conciliator.NewFromCoin(file, sharedcoin.NewVoting(file, n, index), index)
}

// NewRatifier allocates an m-valued deterministic ratifier (Theorem 8) in
// file, using the binary scheme for m = 2 and the Bollobás-optimal pool
// scheme otherwise: lg m + Θ(log log m) registers and individual work
// (Theorem 10).
func NewRatifier(file *Registers, m, index int) (Object, error) {
	if m < 2 {
		return nil, fmt.Errorf("modcon: ratifier needs m ≥ 2, got %d", m)
	}
	if m == 2 {
		return ratifier.NewBinary(file, index), nil
	}
	return ratifier.NewPool(file, m, index), nil
}

// AdoptCommitStatus is the outcome flag of an adopt-commit object.
type AdoptCommitStatus = adoptcommit.Status

// Adopt-commit outcome values.
const (
	Adopt  = adoptcommit.Adopt
	Commit = adoptcommit.Commit
)

// AdoptCommit is an m-valued adopt-commit object — the interface later
// literature standardized for exactly what the paper's ratifiers do.
type AdoptCommit = adoptcommit.Object

// NewAdoptCommit allocates an m-valued adopt-commit object in file.
func NewAdoptCommit(file *Registers, m, index int) *AdoptCommit {
	return adoptcommit.New(file, m, index)
}

// NewCILConsensus allocates the bounded-space Chor–Israeli–Li-style
// round-race consensus object (used as the fallback K of §4.1.2, but a full
// consensus object in its own right) for n processes: n registers,
// polynomial expected work under probabilistic writes.
func NewCILConsensus(file *Registers, n, index int) Object {
	return fallback.New(file, n, index)
}

// Proc is the body of one process in a custom simulation: it receives its
// environment and returns the process's final value.
type Proc func(e Env) Value

// SimResult reports a custom execution (on either backend).
type SimResult struct {
	// Outputs holds each process's return value (None if it crashed or the
	// step limit cut the run short).
	Outputs []Value
	// Halted, Crashed, and Stalled report per-process fates (Stalled is
	// nil unless the fault plan contained stall faults).
	Halted  []bool
	Crashed []bool
	Stalled []bool
	// Work is the per-process operation count; TotalWork their sum.
	Work      []int
	TotalWork int
	// Trace is non-nil when RunConfig.Traced was set.
	Trace *Trace
}

// Simulate runs n copies of proc (each sees its PID via the Env) against
// the registers in file under the adversary s — the building block for
// custom protocols assembled from the exported objects:
//
//	file := modcon.NewRegisters()
//	c := modcon.NewImpatientConciliator(file, n, 1)
//	r, _ := modcon.NewRatifier(file, m, 1)
//	chain := modcon.Compose(c, r)
//	res, _ := modcon.Simulate(n, file, modcon.NewUniformRandom(), seed,
//	    func(e modcon.Env) modcon.Value {
//	        d := chain.Invoke(e, modcon.Value(e.PID()%2))
//	        return d.V
//	    })
//
// With RunConfig.Backend set to Live the same proc runs as free-running
// goroutines over atomic registers; pass a nil scheduler there.
func Simulate(n int, file *Registers, s Scheduler, seed uint64, proc Proc, run ...RunConfig) (*SimResult, error) {
	var rc RunConfig
	switch len(run) {
	case 0:
	case 1:
		rc = run[0]
	default:
		return nil, errors.New("modcon: pass at most one RunConfig")
	}
	if err := rc.Backend.validateOptions(s, rc.Power, rc.Traced, rc.Registers); err != nil {
		return nil, err
	}
	be, err := rc.Backend.impl()
	if err != nil {
		return nil, err
	}
	var tr *Trace
	if rc.Traced {
		tr = trace.New()
	}
	res, err := be.Run(exec.Config{
		N: n, File: file, Scheduler: s, Seed: seed,
		Trace: tr, CheapCollect: rc.CheapCollect, Registers: rc.Registers,
		Faults:   fault.Merge(rc.Faults, fault.FromCrashMap(rc.CrashAfter)),
		MaxSteps: rc.MaxSteps,
		Context:  rc.Context,
	}, exec.Program(proc))
	if err != nil {
		return nil, err
	}
	return &SimResult{
		Outputs:   res.Outputs,
		Halted:    res.Halted,
		Crashed:   res.Crashed,
		Stalled:   res.Stalled,
		Work:      res.Work,
		TotalWork: res.TotalWork,
		Trace:     tr,
	}, nil
}

// CheckConsensus verifies agreement and validity of outputs against inputs;
// use it after running custom protocols (crashed/undecided processes should
// be excluded by the caller).
func CheckConsensus(inputs, outputs []Value) error {
	return check.Consensus(inputs, outputs)
}

// SetAgreement is a one-shot k-set agreement object (at most k distinct
// outputs, each some process's input), built as k independent per-group
// instances of the paper's consensus protocol.
type SetAgreement = setagree.Protocol

// NewSetAgreement allocates a k-set agreement object for n processes over
// values 0..m-1 in file; run it with Simulate and its Run method.
func NewSetAgreement(file *Registers, n, m, k int) (*SetAgreement, error) {
	return setagree.New(file, n, m, k)
}

// TASOutcome is a test-and-set result (Win or Lose).
type TASOutcome = tas.Outcome

// Test-and-set outcomes.
const (
	TASLose = tas.Lose
	TASWin  = tas.Win
)

// TestAndSet is a one-shot n-process test-and-set (leader election) object
// built as a tournament of the paper's 2-process consensus instances:
// exactly one completing process receives TASWin.
type TestAndSet = tas.TAS

// NewTestAndSet allocates a test-and-set object for n processes in file;
// run it with Simulate and its Invoke method.
func NewTestAndSet(file *Registers, n int) (*TestAndSet, error) {
	return tas.New(file, n)
}
