package modcon

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/live"
	"github.com/modular-consensus/modcon/internal/sim"
)

// Backend selects the execution model for Run, RunProtocol, Simulate, and
// Consensus.Solve. The same objects and protocols — written once against
// Env — run unchanged on either backend; only how operations are
// interleaved (and what can be observed about the run) differs.
//
//	Capability          Sim                    Live
//	adversary control   yes (WithScheduler)    no (the Go scheduler decides)
//	tracing             yes (WithTrace)        no
//	deterministic       yes (pure fn of seed)  coins only; not interleaving
//	wall-clock timing   no (simulated steps)   yes
//	register models     atomic, regular,       atomic, regular
//	                    interposed             (no adversary to blunt)
//
// Asking a backend for a capability it lacks is a configuration error with
// a precise message, never silent misbehavior. Work accounting (TotalWork,
// Work) is exact on both; for single-process executions the two backends
// produce bit-identical decisions and op counts.
type Backend int

const (
	// Sim is the deterministic discrete-event simulator (the default): the
	// adversary is an explicit Scheduler, executions are pure functions of
	// (protocol, scheduler, seed), and full traces can be recorded. It is
	// the ground truth for the paper's cost measures.
	Sim Backend = iota
	// Live runs processes as free-running goroutines over sync/atomic
	// registers: the hardware scheduler decides the interleaving, so runs
	// measure real concurrent behavior and wall-clock time. Safety
	// properties must hold on every run; schedule distribution is not
	// controlled.
	Live
)

// String returns the backend's name ("sim", "live").
func (b Backend) String() string {
	switch b {
	case Sim:
		return "sim"
	case Live:
		return "live"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// impl resolves the public enum to the internal backend implementation.
func (b Backend) impl() (exec.Backend, error) {
	switch b {
	case Sim:
		return sim.Backend(), nil
	case Live:
		return live.Backend(), nil
	default:
		return nil, fmt.Errorf("unknown backend %d: %w", int(b), ErrBadOption)
	}
}

// validateOptions checks backend-dependent option combinations up front so
// misconfigurations fail with an actionable message instead of surfacing
// from deep inside a backend. Every error wraps a typed sentinel:
// ErrBadOption for a missing requirement, ErrOptionUnsupported for an
// option the backend cannot honor.
func (b Backend) validateOptions(scheduler Scheduler, power Power, traced bool, registers RegisterModel) error {
	switch registers {
	case Atomic, Regular, Interposed:
	default:
		return fmt.Errorf("unknown register model %d (use Atomic, Regular, or Interposed): %w", int(registers), ErrBadOption)
	}
	if power != 0 && (power < Oblivious || power > Adaptive) {
		return fmt.Errorf("unknown adversary power class %d (use Oblivious, ValueOblivious, LocationOblivious, or Adaptive): %w", int(power), ErrBadOption)
	}
	switch b {
	case Sim:
		if scheduler == nil {
			return fmt.Errorf("a scheduler is required: the %s backend needs an explicit adversary: %w", b, ErrBadOption)
		}
		if power != 0 && scheduler.MinPower() > power {
			return fmt.Errorf("scheduler %q requires at least %s power, but WithPower caps the adversary at %s: %w", scheduler.Name(), scheduler.MinPower(), power, ErrBadOption)
		}
	case Live:
		if power != 0 {
			return fmt.Errorf("an adversary power cap is sim-only: the %s backend has no adversary whose information class could be capped: %w", b, ErrOptionUnsupported)
		}
		if scheduler != nil {
			return fmt.Errorf("a scheduler is sim-only: the %s backend has no adversary control (the Go scheduler decides the interleaving): %w", b, ErrOptionUnsupported)
		}
		if traced {
			return fmt.Errorf("tracing is sim-only: the %s backend has no global step sequence to record: %w", b, ErrOptionUnsupported)
		}
		if registers == Interposed {
			return fmt.Errorf("interposed registers are sim-only: the interposition blunts an adversary's view of in-flight operations, and the %s backend has no adversary to blunt: %w", b, ErrOptionUnsupported)
		}
	}
	return nil
}
