package modcon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/sched"
)

// This file is the package's top-level run API: single executions of objects
// and protocols (Run, RunProtocol) and parallel Monte-Carlo sweeps (Trials),
// all configured through functional options — the same idiom the consensus
// spec options in consensus.go use — instead of raw config struct literals.

// Execution result types, re-exported from the harness.
type (
	// ObjectRun is the outcome of one execution of a deciding object.
	ObjectRun = harness.ObjectRun
	// ProtocolRun is the outcome of one execution of a consensus protocol.
	ProtocolRun = harness.ProtocolRun
	// Protocol is an assembled consensus protocol instance (one-shot);
	// build one with Consensus.Build.
	Protocol = core.Protocol
	// Trial identifies one execution of a Trials sweep: its index and the
	// seed derived for it from the sweep's root seed.
	Trial = harness.Trial
	// SweepProgress snapshots a running Trials sweep (trials done, steps,
	// work, wall time); see WithProgress.
	SweepProgress = harness.Progress
)

// Observability types, re-exported from the internal obs plane.
type (
	// Hist is a deterministic streaming histogram: exact n/sum/min/max,
	// dense unit buckets for small values and log2 buckets above, with
	// nearest-rank quantiles (P50/P90/P99). Merging is commutative and
	// exact, so aggregates are bit-identical at any worker count; see
	// WithHistograms.
	Hist = obs.Hist
	// ProgressSnapshot is one throttled progress observation of a running
	// sweep (trials done, trials/sec, ETA, violation count); see
	// WithProgressSink.
	ProgressSnapshot = obs.Snapshot
	// ProgressSink consumes progress snapshots; see TextProgress and
	// JSONProgress for the built-in sinks.
	ProgressSink = obs.Sink
	// Meter is a live atomic step counter an execution increments as it
	// runs, letting progress snapshots move inside long trials; see
	// WithMeter. A nil Meter costs nothing on the hot path.
	Meter = obs.Meter
)

// TextProgress returns a ProgressSink that writes one human-readable line
// per snapshot, e.g.
//
//	trials 620/1000 (62.0%)  41.3/s  eta 9s  violations 0
func TextProgress(w io.Writer) ProgressSink { return obs.Text(w) }

// JSONProgress returns a ProgressSink that writes each snapshot as one JSON
// object per line (JSON Lines), for machine consumption.
func JSONProgress(w io.Writer) ProgressSink { return obs.JSONLines(w) }

// Typed option-validation sentinels. Every configuration error the run API
// reports wraps one of these, so callers can branch with errors.Is instead
// of matching message strings (which remain precise and actionable).
var (
	// ErrOptionUnsupported marks an option the selected backend cannot
	// honor — e.g. WithScheduler or WithTrace on the Live backend, which has
	// no adversary control and no global step sequence.
	ErrOptionUnsupported = errors.New("modcon: option unsupported by backend")
	// ErrBadOption marks a missing or invalid option value — e.g. a
	// non-positive WithN, a missing WithRegisters or WithInputs, or an
	// unknown backend.
	ErrBadOption = errors.New("modcon: missing or invalid option")
)

// RunOption configures Run, RunProtocol, and Trials executions.
type RunOption interface {
	applyRun(*runConfig)
}

type runOptionFunc func(*runConfig)

func (f runOptionFunc) applyRun(c *runConfig) { f(c) }

type runConfig struct {
	n            int
	file         *Registers
	registers    RegisterModel
	inputs       []Value
	backend      Backend
	scheduler    Scheduler
	schedErr     error
	power        Power
	seed         uint64
	traced       bool
	ctx          context.Context
	workers      int
	maxSteps     int
	crashAfter   map[int]int
	cheapCollect bool
	progress     func(SweepProgress)
	sink         ProgressSink
	sinkInterval time.Duration
	stepsHist    *Hist
	workHist     *Hist
	meter        *Meter
	faults       *FaultPlan
	deadline     time.Duration
	retries      int
	failFast     bool
	laneWidth    int
	workloadSpec *WorkloadSpec
	traceRecord  *WorkloadTrace
	traceReplay  *WorkloadTrace
}

// WithN sets the process count (required for Run and RunProtocol).
func WithN(n int) RunOption {
	return runOptionFunc(func(c *runConfig) { c.n = n })
}

// WithRegisters names the register file the object or protocol was built
// against (required: objects allocate their registers at construction) and,
// optionally, the register consistency model the execution should honor:
//
//	WithRegisters(file)              // atomic registers (the default)
//	WithRegisters(file, Regular)     // reads overlapping writes may be stale
//	WithRegisters(file, Interposed)  // adversary-blunting interposition (Sim)
//
// Models a backend does not implement are rejected with
// ErrOptionUnsupported; see RegisterModel for what each model means.
func WithRegisters(file *Registers, model ...RegisterModel) RunOption {
	return runOptionFunc(func(c *runConfig) {
		c.file = file
		if len(model) > 0 {
			c.registers = model[len(model)-1]
		}
	})
}

// WithInputs sets per-process input values: one per process, or a single
// value broadcast to all (required).
func WithInputs(vs ...Value) RunOption {
	return runOptionFunc(func(c *runConfig) { c.inputs = vs })
}

// WithBackend selects the execution model: Sim (the default — deterministic
// simulator with an explicit adversary) or Live (free-running goroutines
// over atomic registers). Sim-only options (WithScheduler, WithTrace) are
// rejected with a clear error on backends that cannot honor them.
func WithBackend(b Backend) RunOption {
	return runOptionFunc(func(c *runConfig) { c.backend = b })
}

// WithScheduler sets the adversary (required on the Sim backend; rejected
// on Live, which has no adversary control). Schedulers are stateful — pass
// a fresh one per execution.
func WithScheduler(s Scheduler) RunOption {
	return runOptionFunc(func(c *runConfig) { c.scheduler = s })
}

// WithSearchedScheduler sets the adversary from a parametric scheduler
// config in the canonical text form emitted by the adversary search
// (internal/advsearch via cmd/modcon-bench -search), e.g.
//
//	WithSearchedScheduler("adv:power=value-oblivious,base=lockstep;rule:when=prob-pending,do=hold-prob")
//
// It is WithScheduler for named, reproducible adversaries: the config string
// is the scheduler's identity, so a found worst case can be replayed from a
// report without any Go code. A malformed config is reported (wrapping
// ErrBadOption) when the run is built, not here.
func WithSearchedScheduler(config string) RunOption {
	return runOptionFunc(func(c *runConfig) {
		s, err := sched.NewParametricFromString(config)
		if err != nil {
			c.schedErr = err
			return
		}
		c.scheduler = s
	})
}

// WithPower caps the adversary information class of a Sim execution: a
// scheduler whose MinPower exceeds the cap is rejected with ErrBadOption
// before anything runs. The zero value means "no cap" (each scheduler runs
// at exactly its declared MinPower); the Live backend rejects any cap with
// ErrOptionUnsupported, having no adversary to cap.
func WithPower(p Power) RunOption {
	return runOptionFunc(func(c *runConfig) { c.power = p })
}

// NewSearchedScheduler builds a parametric adversary from its canonical
// config text — the factory-shaped companion of WithSearchedScheduler for
// APIs that take scheduler factories (Consensus.Sweep). The returned
// scheduler is stateful like every adversary; build a fresh one per factory
// call.
func NewSearchedScheduler(config string) (Scheduler, error) {
	s, err := sched.NewParametricFromString(config)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrBadOption)
	}
	return s, nil
}

// WithSeed sets the seed driving all randomness (for Trials, the root seed
// that per-trial seeds are derived from).
func WithSeed(seed uint64) RunOption {
	return runOptionFunc(func(c *runConfig) { c.seed = seed })
}

// WithTrace requests a full execution trace in the run's Trace field.
func WithTrace(on bool) RunOption {
	return runOptionFunc(func(c *runConfig) { c.traced = on })
}

// WithContext attaches a context: the execution (or, for Trials, the whole
// sweep and every in-flight execution) is cancelled between simulated steps
// when the context expires.
func WithContext(ctx context.Context) RunOption {
	return runOptionFunc(func(c *runConfig) { c.ctx = ctx })
}

// WithWorkers caps the concurrency of a Trials sweep; 0 (the default) uses
// GOMAXPROCS. Aggregates are bit-identical at any worker count. Run and
// RunProtocol ignore it.
func WithWorkers(workers int) RunOption {
	return runOptionFunc(func(c *runConfig) { c.workers = workers })
}

// WithMaxSteps bounds an execution's total work (0 = simulator default).
func WithMaxSteps(steps int) RunOption {
	return runOptionFunc(func(c *runConfig) { c.maxSteps = steps })
}

// WithCrashAfter crashes each listed pid after its given operation count.
//
// Deprecated: it is exactly WithFaults with one CrashFault(pid, after) per
// map entry — the typed fault plane subsumes it. It keeps working as an
// alias and merges with WithFaults (the smaller threshold wins per
// process), but new code should state crash faults through WithFaults.
func WithCrashAfter(crashes map[int]int) RunOption {
	return runOptionFunc(func(c *runConfig) { c.crashAfter = crashes })
}

// WithFaults injects the given faults into the execution (or, for Trials
// and TrialsRobust, into every trial): crashes, stalls, per-op delay
// jitter, lost probabilistic-write coins — on either backend. Repeated use
// accumulates; see also WithFaultPlan for a pre-built or parsed plan.
func WithFaults(faults ...Fault) RunOption {
	return runOptionFunc(func(c *runConfig) { c.faults = fault.Merge(c.faults, fault.New(faults...)) })
}

// WithFaultPlan injects a pre-built fault plan (see Faults, ParseFaults),
// merging with any faults configured so far. A nil plan is a no-op.
func WithFaultPlan(p *FaultPlan) RunOption {
	return runOptionFunc(func(c *runConfig) { c.faults = fault.Merge(c.faults, p) })
}

// WithTrialDeadline arms TrialsRobust's per-trial watchdog: a trial still
// running after d — livelocked by stall faults, stuck, or just unlucky —
// is cancelled (cause ErrTrialDeadline) and classified TrialTimeout while
// the rest of the sweep continues. Run, RunProtocol, and Trials ignore it.
func WithTrialDeadline(d time.Duration) RunOption {
	return runOptionFunc(func(c *runConfig) { c.deadline = d })
}

// WithRetries lets TrialsRobust re-attempt a trial that failed with an
// infrastructure error up to n times (exponential backoff). Model-level
// outcomes — violations, timeouts, panics, step-limit exhaustion — are
// never retried.
func WithRetries(n int) RunOption {
	return runOptionFunc(func(c *runConfig) { c.retries = n })
}

// WithFailFast makes TrialsRobust stop the sweep at the first safety
// violation, keeping the partial report.
func WithFailFast(on bool) RunOption {
	return runOptionFunc(func(c *runConfig) { c.failFast = on })
}

// WithCheapCollect enables the O(1)-collect cost model (§6.2, choice 4).
func WithCheapCollect(on bool) RunOption {
	return runOptionFunc(func(c *runConfig) { c.cheapCollect = on })
}

// WithProgress registers a hook a Trials sweep calls after every merged
// trial, from a single goroutine. Run and RunProtocol ignore it.
func WithProgress(fn func(SweepProgress)) RunOption {
	return runOptionFunc(func(c *runConfig) { c.progress = fn })
}

// WithProgressSink streams throttled progress snapshots (trials done,
// trials/sec, ETA, violation count) from a Trials or TrialsRobust sweep to
// sink, at most one per interval plus always the final snapshot; a
// non-positive interval emits every observation. See TextProgress and
// JSONProgress. Run and RunProtocol ignore it.
func WithProgressSink(sink ProgressSink, interval time.Duration) RunOption {
	return runOptionFunc(func(c *runConfig) {
		c.sink = sink
		c.sinkInterval = interval
	})
}

// WithHistograms accumulates per-trial step and work distributions from a
// Trials or TrialsRobust sweep into the given histograms (either may be
// nil). Trials whose results carry step/work measures (ObjectRun,
// ProtocolRun) feed both; the aggregates are bit-identical at any worker
// count and across Trials vs TrialsRobust for the same seed. Run and
// RunProtocol ignore it.
func WithHistograms(steps, work *Hist) RunOption {
	return runOptionFunc(func(c *runConfig) {
		c.stepsHist = steps
		c.workHist = work
	})
}

// WithBatching controls lane (batched) execution for Trials sweeps whose
// configuration is lane-eligible: the Sim backend with no trace, meter, or
// fault plan in play. Eligible sweeps run whole lanes of trials per engine
// checkout instead of one trial each, which removes most per-trial dispatch
// cost; results and aggregates are bit-identical either way, so the option
// only moves wall-clock. width > 1 sets the trials-per-lane, 0 (the
// default) picks the harness default width, and a negative width disables
// batching. Ineligible sweeps, TrialsRobust (whose per-trial deadline and
// retry containment need one checkout per trial), Run, and RunProtocol
// ignore it.
func WithBatching(width int) RunOption {
	return runOptionFunc(func(c *runConfig) { c.laneWidth = width })
}

// WithMeter attaches a live step counter to executions: Run and RunProtocol
// increment it once per executed operation, and a Trials sweep configured
// with the same meter reports its running total in progress snapshots — so
// progress moves even inside long trials. A nil meter (the default) costs
// one predictable branch per step and nothing else.
func WithMeter(m *Meter) RunOption {
	return runOptionFunc(func(c *runConfig) { c.meter = m })
}

func buildRunConfig(opts []RunOption) runConfig {
	var c runConfig
	for _, o := range opts {
		o.applyRun(&c)
	}
	return c
}

func (c *runConfig) objectConfig() (harness.ObjectConfig, error) {
	if c.n <= 0 {
		return harness.ObjectConfig{}, fmt.Errorf("WithN(%d) must be positive: %w", c.n, ErrBadOption)
	}
	if c.file == nil {
		return harness.ObjectConfig{}, fmt.Errorf("WithRegisters is required (objects run in the file they were built against): %w", ErrBadOption)
	}
	if c.schedErr != nil {
		return harness.ObjectConfig{}, fmt.Errorf("WithSearchedScheduler: %v: %w", c.schedErr, ErrBadOption)
	}
	if c.backend == Sim && c.scheduler == nil {
		return harness.ObjectConfig{}, fmt.Errorf("WithScheduler is required (the sim backend needs an explicit adversary; use WithBackend(Live) to run without one): %w", ErrBadOption)
	}
	if err := c.backend.validateOptions(c.scheduler, c.power, c.traced, c.registers); err != nil {
		return harness.ObjectConfig{}, err
	}
	if len(c.inputs) == 0 {
		return harness.ObjectConfig{}, fmt.Errorf("WithInputs is required: %w", ErrBadOption)
	}
	be, err := c.backend.impl()
	if err != nil {
		return harness.ObjectConfig{}, err
	}
	return harness.ObjectConfig{
		N:            c.n,
		File:         c.file,
		Inputs:       c.inputs,
		Backend:      be,
		Scheduler:    c.scheduler,
		Seed:         c.seed,
		Traced:       c.traced,
		CheapCollect: c.cheapCollect,
		Registers:    c.registers,
		CrashAfter:   c.crashAfter,
		Faults:       c.faults,
		MaxSteps:     c.maxSteps,
		Context:      c.ctx,
		Meter:        c.meter,
	}, nil
}

// sweep builds the trial-engine configuration shared by Trials and
// TrialsRobust.
func (c *runConfig) sweep(trials int) harness.Sweep {
	var reporter *obs.Reporter
	if c.sink != nil {
		reporter = obs.NewReporter(c.sink, c.sinkInterval)
	}
	return harness.Sweep{
		Trials:    trials,
		Workers:   c.workers,
		Seed:      c.seed,
		LaneWidth: c.laneWidth,
		Context:   c.ctx,
		Progress:  c.progress,
		Reporter:  reporter,
		StepsHist: c.stepsHist,
		WorkHist:  c.workHist,
		Meter:     c.meter,
	}
}

// Run executes a deciding object once: every process invokes it with its
// input under the configured adversary.
//
//	file := modcon.NewRegisters()
//	c := modcon.NewImpatientConciliator(file, n, 1)
//	run, err := modcon.Run(c,
//	    modcon.WithRegisters(file), modcon.WithN(n),
//	    modcon.WithInputs(0, 1, 0, 1),
//	    modcon.WithScheduler(modcon.NewUniformRandom()),
//	    modcon.WithSeed(7))
func Run(obj Object, opts ...RunOption) (*ObjectRun, error) {
	c := buildRunConfig(opts)
	cfg, err := c.objectConfig()
	if err != nil {
		return nil, err
	}
	return harness.RunObject(obj, cfg)
}

// RunProtocol executes an assembled consensus protocol once (see
// Consensus.Build); unlike Consensus.Solve it exposes the raw run without
// input-domain validation or safety checking, for embedding protocols in
// larger simulated systems.
func RunProtocol(p *Protocol, opts ...RunOption) (*ProtocolRun, error) {
	c := buildRunConfig(opts)
	cfg, err := c.objectConfig()
	if err != nil {
		return nil, err
	}
	return harness.RunProtocol(p, cfg)
}

// Trials runs trials independent executions on a worker pool, folds their
// results in trial order, and returns a SweepReport classifying every trial.
//
// run is called concurrently, once per trial; it must create all per-trial
// state (register files, objects, schedulers) fresh — or replay a reusable
// session — seed the execution with t.Seed, and thread ctx into it
// (WithContext) so cancellation reaches in-flight executions. merge, which
// may be nil, is called from a single goroutine in trial-index order
// regardless of completion order — so aggregates accumulated there are
// bit-identical at any worker count for the same root seed (see WithSeed,
// WithWorkers). It also receives each trial's TrialReport; for non-ok
// outcomes the result may be partial or zero.
//
// Trials degrades gracefully instead of aborting: every trial is classified
// (TrialOK, TrialViolated on an online safety violation, TrialTimeout when
// the WithTrialDeadline watchdog kills a livelocked trial, TrialPanicked
// with the panic contained to the trial, TrialCrashedShort when nothing
// decided, TrialFailed after WithRetries infrastructure retries) and the
// sweep always returns its partial aggregates in the SweepReport.
//
// Recognized options: WithSeed, WithWorkers, WithContext, WithProgress,
// WithProgressSink, WithHistograms, WithMeter, WithTrialDeadline,
// WithRetries, WithFailFast, WithWorkload, WithTraceRecord,
// WithTraceReplay. The error is nil unless the sweep's context was
// cancelled externally, a workload option conflicted, or a trace replay
// diverged from its recording (ErrTraceDiverged).
func Trials[T any](trials int, run func(ctx context.Context, t Trial) (T, error), merge func(t Trial, result T, rep TrialReport), opts ...RunOption) (*SweepReport, error) {
	c := buildRunConfig(opts)
	wl, err := c.workloadPlan(trials)
	if err != nil {
		return nil, err
	}
	s := c.sweep(trials)
	if wl != nil {
		s.Arrivals = wl.arrivals
	}
	mergeFn := merge
	if wl != nil && wl.demands != nil {
		mergeFn = func(t Trial, result T, rep TrialReport) {
			wl.observe(t.Index, any(result))
			if merge != nil {
				merge(t, result, rep)
			}
		}
	}
	report, err := harness.RunTrialsRobust(s, harness.Resilience{
		Deadline: c.deadline,
		Retries:  c.retries,
		FailFast: c.failFast,
	}, run, mergeFn)
	if err != nil {
		return report, err
	}
	if err := wl.finish(report); err != nil {
		return report, err
	}
	return report, nil
}

// TrialsRobust is the former name of the classified sweep engine.
//
// Deprecated: Trials itself now runs every sweep on the resilient engine
// with this exact signature; call Trials.
func TrialsRobust[T any](trials int, run func(ctx context.Context, t Trial) (T, error), merge func(t Trial, result T, rep TrialReport), opts ...RunOption) (*SweepReport, error) {
	return Trials(trials, run, merge, opts...)
}

// TrialsStrict preserves the pre-unification Trials shape: no per-trial
// classification, and the first trial error (by index) cancels the sweep
// and is returned.
//
// Deprecated: call Trials, which classifies failing trials instead of
// aborting the sweep and returns the aggregate SweepReport; pass
// WithFailFast(true) if a violation should still stop the sweep early.
func TrialsStrict[T any](trials int, run func(ctx context.Context, t Trial) (T, error), merge func(t Trial, result T), opts ...RunOption) error {
	c := buildRunConfig(opts)
	if c.workloadOptionsSet() {
		return fmt.Errorf("TrialsStrict does not support workload options; call Trials: %w", ErrOptionUnsupported)
	}
	return harness.RunTrials(c.sweep(trials), run, merge)
}
