package modcon

// Cross-backend tests through the public API: the seam's acceptance
// criteria. Single-process executions must be bit-identical on Sim and
// Live (same decisions, same op counts — pinned per catalog object), live
// consensus must satisfy agreement and validity on every run across
// process counts and seeds, and sim-only options must be rejected with
// clear errors on Live. Names start with TestLive so CI's live smoke step
// (`go test -race -run Live ./...`) picks them up.

import (
	"strings"
	"testing"
)

// liveCatalog builds each public-catalog deciding object for a
// single-process execution (objects are one-shot: fresh file and object
// per run).
func liveCatalog(t *testing.T) []struct {
	name  string
	build func() (*Registers, Object)
	input Value
} {
	t.Helper()
	type entry = struct {
		name  string
		build func() (*Registers, Object)
		input Value
	}
	return []entry{
		{"impatient-conciliator", func() (*Registers, Object) {
			f := NewRegisters()
			return f, NewImpatientConciliator(f, 1, 1)
		}, 1},
		{"constant-rate-conciliator", func() (*Registers, Object) {
			f := NewRegisters()
			return f, NewConstantRateConciliator(f, 1, 1)
		}, 1},
		{"coin-conciliator", func() (*Registers, Object) {
			f := NewRegisters()
			return f, NewCoinConciliator(f, 1, 1)
		}, 1},
		{"binary-ratifier", func() (*Registers, Object) {
			f := NewRegisters()
			r, err := NewRatifier(f, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			return f, r
		}, 1},
		{"pool-ratifier-m16", func() (*Registers, Object) {
			f := NewRegisters()
			r, err := NewRatifier(f, 16, 1)
			if err != nil {
				t.Fatal(err)
			}
			return f, r
		}, 7},
		{"cil-consensus", func() (*Registers, Object) {
			f := NewRegisters()
			return f, NewCILConsensus(f, 1, 1)
		}, 1},
	}
}

// TestLiveCrossBackendSingleProcess pins the seam's equivalence property:
// with one process there is no interleaving to differ on, and both
// backends derive the coin streams identically, so Sim and Live must
// produce the same decision and the same op counts, bit for bit.
func TestLiveCrossBackendSingleProcess(t *testing.T) {
	for _, c := range liveCatalog(t) {
		t.Run(c.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				runOn := func(opts ...RunOption) *ObjectRun {
					file, obj := c.build()
					base := []RunOption{
						WithN(1), WithRegisters(file), WithInputs(c.input), WithSeed(seed),
					}
					run, err := Run(obj, append(base, opts...)...)
					if err != nil {
						t.Fatal(err)
					}
					return run
				}
				simRun := runOn(WithScheduler(NewRoundRobin()))
				liveRun := runOn(WithBackend(Live))
				if simRun.Decisions[0] != liveRun.Decisions[0] {
					t.Fatalf("seed %d: sim decided %v, live %v", seed, simRun.Decisions[0], liveRun.Decisions[0])
				}
				if simRun.Result.Work[0] != liveRun.Result.Work[0] ||
					simRun.Result.TotalWork != liveRun.Result.TotalWork {
					t.Fatalf("seed %d: sim work %v/%d, live %v/%d", seed,
						simRun.Result.Work, simRun.Result.TotalWork,
						liveRun.Result.Work, liveRun.Result.TotalWork)
				}
			}
		})
	}
}

// TestLiveBinaryConsensusSafety runs the full binary protocol on the live
// backend across process counts and seeds; agreement and validity are
// safety properties, so no goroutine interleaving may violate them (Solve
// checks them internally and errors on violation).
func TestLiveBinaryConsensusSafety(t *testing.T) {
	for _, n := range []int{2, 8, 32} {
		spec, err := NewBinary(n, WithFallback(true))
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]Value, n)
		for i := range inputs {
			inputs[i] = Value(i % 2)
		}
		for seed := uint64(0); seed < 5; seed++ {
			out, err := spec.Solve(inputs, nil, seed, RunConfig{Backend: Live})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if out.Value.IsNone() {
				t.Fatalf("n=%d seed=%d: no process decided", n, seed)
			}
			if err := Verify(inputs, out); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

// TestLiveMValuedConsensusSafety is the m-valued counterpart.
func TestLiveMValuedConsensusSafety(t *testing.T) {
	for _, n := range []int{2, 8, 32} {
		const m = 5
		spec, err := New(n, m, WithFallback(true))
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]Value, n)
		for i := range inputs {
			inputs[i] = Value(i % m)
		}
		for seed := uint64(0); seed < 3; seed++ {
			out, err := spec.Solve(inputs, nil, seed, RunConfig{Backend: Live})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if err := Verify(inputs, out); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

// TestLiveRejectsSimOnlyOptions checks the capability errors: a scheduler
// or trace request on Live, a missing scheduler on Sim, and an out-of-range
// backend all fail with messages naming the problem.
func TestLiveRejectsSimOnlyOptions(t *testing.T) {
	file := NewRegisters()
	obj := NewImpatientConciliator(file, 2, 1)
	base := []RunOption{WithN(2), WithRegisters(file), WithInputs(0, 1), WithBackend(Live)}

	if _, err := Run(obj, append(base, WithScheduler(NewRoundRobin()))...); err == nil || !strings.Contains(err.Error(), "sim-only") {
		t.Fatalf("scheduler on live: err = %v", err)
	}
	if _, err := Run(obj, append(base, WithTrace(true))...); err == nil || !strings.Contains(err.Error(), "sim-only") {
		t.Fatalf("trace on live: err = %v", err)
	}
	if _, err := Run(obj, WithN(2), WithRegisters(file), WithInputs(0, 1)); err == nil || !strings.Contains(err.Error(), "WithScheduler") {
		t.Fatalf("missing scheduler on sim: err = %v", err)
	}
	if _, err := Run(obj, append(base, WithBackend(Backend(99)))...); err == nil {
		t.Fatal("unknown backend accepted")
	}

	spec, err := NewBinary(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Solve([]Value{0, 1}, NewRoundRobin(), 1, RunConfig{Backend: Live}); err == nil || !strings.Contains(err.Error(), "sim-only") {
		t.Fatalf("Solve scheduler on live: err = %v", err)
	}
	if _, err := spec.Solve([]Value{0, 1}, nil, 1, RunConfig{Backend: Live, Traced: true}); err == nil || !strings.Contains(err.Error(), "sim-only") {
		t.Fatalf("Solve traced on live: err = %v", err)
	}
	if _, err := spec.Solve([]Value{0, 1}, nil, 1); err == nil || !strings.Contains(err.Error(), "scheduler is required") {
		t.Fatalf("Solve nil scheduler on sim: err = %v", err)
	}
}

// TestLiveSimulateCustomProtocol runs a hand-assembled object chain on
// both backends through Simulate; single-process results must match.
func TestLiveSimulateCustomProtocol(t *testing.T) {
	build := func() (*Registers, Object) {
		f := NewRegisters()
		c := NewImpatientConciliator(f, 1, 1)
		r, err := NewRatifier(f, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return f, Compose(c, r)
	}
	proc := func(chain Object) Proc {
		return func(e Env) Value { return chain.Invoke(e, Value(e.PID()%2)).V }
	}
	for seed := uint64(1); seed <= 3; seed++ {
		fileA, chainA := build()
		simRes, err := Simulate(1, fileA, NewRoundRobin(), seed, proc(chainA))
		if err != nil {
			t.Fatal(err)
		}
		fileB, chainB := build()
		liveRes, err := Simulate(1, fileB, nil, seed, proc(chainB), RunConfig{Backend: Live})
		if err != nil {
			t.Fatal(err)
		}
		if simRes.Outputs[0] != liveRes.Outputs[0] || simRes.TotalWork != liveRes.TotalWork {
			t.Fatalf("seed %d: sim %v/%d ops, live %v/%d ops", seed,
				simRes.Outputs[0], simRes.TotalWork, liveRes.Outputs[0], liveRes.TotalWork)
		}
	}
}

func TestBackendString(t *testing.T) {
	if Sim.String() != "sim" || Live.String() != "live" {
		t.Fatalf("Backend strings: %q %q", Sim, Live)
	}
	if s := Backend(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown backend string %q", s)
	}
}
