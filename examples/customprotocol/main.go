// Custom protocol assembly: the point of the paper's modular decomposition
// is that conciliators and ratifiers are interchangeable parts. This
// example builds three different consensus protocols from the exported
// objects and races them on the same workload:
//
//  1. the paper's recipe (impatient conciliators + ratifiers),
//  2. the pre-2010 recipe (constant-rate CIL/Cheung conciliators), and
//  3. a "belt and suspenders" chain that ends in the bounded-space CIL
//     consensus object, so it decides even if every conciliator stage
//     fails.
//
// Safety is identical for all three — it comes from the ratifiers — while
// the work profile differs exactly as the theorems predict.
//
// Each race runs its trials on modcon.Trials (the parallel trial engine)
// and executes the hand-assembled chain with modcon.Run and functional
// options, the top-level API for custom objects.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/modular-consensus/modcon"
)

const (
	n      = 16
	m      = 4
	stages = 8
	trials = 150
)

// buildChain assembles `stages` conciliator+ratifier pairs, with a CIL tail
// when withFallback is set.
func buildChain(file *modcon.Registers, impatient, withFallback bool) (modcon.Object, error) {
	var objs []modcon.Object
	for i := 1; i <= stages; i++ {
		if impatient {
			objs = append(objs, modcon.NewImpatientConciliator(file, n, i))
		} else {
			objs = append(objs, modcon.NewConstantRateConciliator(file, n, i))
		}
		r, err := modcon.NewRatifier(file, m, i)
		if err != nil {
			return nil, err
		}
		objs = append(objs, r)
	}
	if withFallback {
		objs = append(objs, modcon.NewCILConsensus(file, n, 0))
	}
	return modcon.Compose(objs...), nil
}

func race(name string, impatient, withFallback bool) error {
	totalWork, maxWork, undecided := 0, 0, 0
	report, err := modcon.Trials(trials,
		func(ctx context.Context, t modcon.Trial) (*modcon.ObjectRun, error) {
			// Objects are one-shot: fresh registers and a fresh chain per
			// trial, seeded from the engine's derived per-trial seed.
			file := modcon.NewRegisters()
			chain, err := buildChain(file, impatient, withFallback)
			if err != nil {
				return nil, err
			}
			inputs := make([]modcon.Value, n)
			for i := range inputs {
				inputs[i] = modcon.Value((i + t.Index) % m)
			}
			run, err := modcon.Run(chain,
				modcon.WithRegisters(file),
				modcon.WithN(n),
				modcon.WithInputs(inputs...),
				modcon.WithScheduler(modcon.NewFirstMoverAttack()),
				modcon.WithSeed(t.Seed),
				modcon.WithContext(ctx))
			if err != nil {
				return nil, err
			}
			var agreedOutputs []modcon.Value
			for _, d := range run.Decisions {
				if d.Decided {
					agreedOutputs = append(agreedOutputs, d.V)
				}
			}
			if err := modcon.CheckConsensus(inputs, agreedOutputs); err != nil {
				return nil, fmt.Errorf("%s trial %d: %w", name, t.Index, err)
			}
			return run, nil
		},
		func(_ modcon.Trial, run *modcon.ObjectRun, rep modcon.TrialReport) {
			if rep.Outcome != modcon.TrialOK {
				return
			}
			totalWork += run.Result.TotalWork
			for _, d := range run.Decisions {
				if !d.Decided {
					undecided++
				}
			}
			for _, w := range run.Result.Work {
				if w > maxWork {
					maxWork = w
				}
			}
		})
	if err != nil {
		return err
	}
	// The unified engine classifies trial errors instead of aborting; surface
	// the first one (e.g. a CheckConsensus violation) as this race's error.
	for _, rep := range report.Reports {
		if rep.Err != nil {
			return rep.Err
		}
	}
	fmt.Printf("%-34s  mean total %6.1f ops   worst individual %3d ops   undecided %d/%d\n",
		name, float64(totalWork)/trials, maxWork, undecided, trials*n)
	return nil
}

func main() {
	fmt.Printf("racing 3 hand-assembled protocols: n=%d, m=%d, %d stages, first-mover attack, %d trials\n\n",
		n, m, stages, trials)
	for _, cfg := range []struct {
		name                    string
		impatient, withFallback bool
	}{
		{"paper recipe (impatient)", true, false},
		{"pre-2010 recipe (constant-rate)", false, false},
		{"impatient + CIL fallback", true, true},
	} {
		if err := race(cfg.name, cfg.impatient, cfg.withFallback); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nall protocols are safe (ratifiers); the conciliator choice only moves the work")
}
