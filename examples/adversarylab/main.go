// Adversary lab: how much does the scheduler matter?
//
// The same binary-consensus spec is run under every adversary in the
// portfolio, tabulating agreement-by-stage and work. Safety never changes —
// that is the point of the conciliator/ratifier decomposition — but the
// adversary controls how often conciliation fails and therefore how much
// work termination costs.
//
// The per-adversary Monte-Carlo loop runs on modcon.Trials, the parallel
// trial engine: executions fan out over a worker pool, per-trial seeds are
// derived from the root seed, and results merge in trial order — so the
// table below is identical at any worker count.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/modular-consensus/modcon"
)

func main() {
	const (
		n      = 16
		trials = 200
	)

	adversaries := []struct {
		name string
		mk   func() modcon.Scheduler
	}{
		{"round-robin (oblivious)", func() modcon.Scheduler { return modcon.NewRoundRobin() }},
		{"uniform-random (oblivious)", func() modcon.Scheduler { return modcon.NewUniformRandom() }},
		{"lockstep (oblivious)", func() modcon.Scheduler { return modcon.NewLaggard() }},
		{"frontrunner (oblivious)", func() modcon.Scheduler { return modcon.NewFrontrunner() }},
		{"noisy σ=0.3 (oblivious)", func() modcon.Scheduler { return modcon.NewNoisy(0.3) }},
		{"first-mover attack (loc-oblivious)", func() modcon.Scheduler { return modcon.NewFirstMoverAttack() }},
		{"eager-write attack (loc-oblivious)", func() modcon.Scheduler { return modcon.NewEagerWriteAttack() }},
	}

	cons, err := modcon.NewBinary(n)
	if err != nil {
		log.Fatal(err)
	}
	inputs := make([]modcon.Value, n)
	for i := range inputs {
		inputs[i] = modcon.Value(i % 2)
	}

	fmt.Printf("%-36s  %10s  %10s  %12s  %s\n",
		"adversary", "mean total", "mean indiv", "mean stage", "stage histogram (fast,1,2,3+)")
	for _, adv := range adversaries {
		var totTotal, totInd, totStage float64
		var hist [4]int
		decisions := 0
		_, err := modcon.Trials(trials,
			func(ctx context.Context, t modcon.Trial) (*modcon.Outcome, error) {
				// Schedulers are stateful: build a fresh one per trial.
				return cons.Solve(inputs, adv.mk(), t.Seed, modcon.RunConfig{Context: ctx})
			},
			func(_ modcon.Trial, out *modcon.Outcome, rep modcon.TrialReport) {
				if rep.Outcome != modcon.TrialOK {
					return
				}
				totTotal += float64(out.TotalWork)
				totInd += float64(out.MaxWork())
				for pid := range out.Stage {
					st := out.Stage[pid]
					totStage += float64(st)
					decisions++
					switch {
					case st == 0:
						hist[0]++
					case st == 1:
						hist[1]++
					case st == 2:
						hist[2]++
					default:
						hist[3]++
					}
				}
			},
			modcon.WithSeed(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s  %10.1f  %10.1f  %12.2f  %v\n",
			adv.name, totTotal/trials, totInd/trials, totStage/float64(decisions), hist)
	}

	fmt.Println("\nevery run above decided safely: the adversary buys delay, never disagreement")
}
