// Quickstart: solve binary consensus among 8 simulated processes with
// mixed inputs, under a uniformly random (oblivious) adversary, and print
// what happened.
package main

import (
	"fmt"
	"log"

	"github.com/modular-consensus/modcon"
)

func main() {
	const n = 8

	// A Consensus value is a protocol *spec*: n processes, binary inputs,
	// assembled per the paper — fast-path ratifier pair R₋₁;R₀, then
	// alternating impatient conciliators and binary ratifiers.
	cons, err := modcon.NewBinary(n)
	if err != nil {
		log.Fatal(err)
	}

	// Each process gets a private input bit.
	inputs := []modcon.Value{0, 1, 1, 0, 1, 0, 0, 1}

	// Solve runs one simulated execution. The scheduler is the adversary:
	// here, uniformly random interleaving. Solve verifies agreement and
	// validity before returning.
	out, err := cons.Solve(inputs, modcon.NewUniformRandom(), 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("inputs:  %v\n", inputs)
	fmt.Printf("decided: %s (every process)\n", out.Value)
	fmt.Printf("work:    %d total ops, %d max per process\n", out.TotalWork, out.MaxWork())
	for pid := range out.Outputs {
		where := fmt.Sprintf("stage %d", out.Stage[pid])
		if out.Stage[pid] == 0 {
			where = "fast path"
		}
		fmt.Printf("  p%d -> %s (%s, %d ops)\n", pid, out.Outputs[pid], where, out.Work[pid])
	}

	// The same spec under a hostile location-oblivious adversary: the
	// first-mover attack from the Theorem 7 analysis. Safety is unaffected;
	// only the work and the number of stages grow.
	out2, err := cons.Solve(inputs, modcon.NewFirstMoverAttack(), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunder attack: decided %s, %d total ops, %d max per process\n",
		out2.Value, out2.TotalWork, out2.MaxWork())
}
