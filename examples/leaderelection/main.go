// Leader election via n-valued consensus: every process proposes itself
// (its pid) and the consensus value is the leader — a direct use of the
// paper's m-valued protocol with m = n, exercising the lg m + Θ(log log m)
// ratifier quorums.
//
// The example also demonstrates crash tolerance (wait-freedom): a minority
// of processes crash mid-protocol and the survivors still elect a single
// leader, who may even be a crashed process (validity only requires the
// value to be *somebody's* proposal).
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/modular-consensus/modcon"
)

func main() {
	const n = 9

	cons, err := modcon.New(n, n) // m = n: propose pids
	if err != nil {
		log.Fatal(err)
	}

	proposals := make([]modcon.Value, n)
	for pid := range proposals {
		proposals[pid] = modcon.Value(pid)
	}

	// Healthy run.
	out, err := cons.Solve(proposals, modcon.NewUniformRandom(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elected leader: p%d (work: %d ops total, %d max individual)\n",
		int64(out.Value), out.TotalWork, out.MaxWork())

	// Now with crashes: processes 0–3 die at various points. The paper's
	// protocols are wait-free, so the survivors must still decide.
	crash := map[int]int{0: 1, 1: 4, 2: 9, 3: 15}
	out, err = cons.Solve(proposals, modcon.NewUniformRandom(), 8,
		modcon.RunConfig{CrashAfter: crash})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith crashes of p0..p3 mid-protocol:\n")
	fmt.Printf("elected leader: p%d\n", int64(out.Value))
	for pid := range out.Outputs {
		switch {
		case out.Decided[pid]:
			fmt.Printf("  p%d decided p%d after %d ops\n", pid, int64(out.Outputs[pid]), out.Work[pid])
		default:
			fmt.Printf("  p%d crashed after %d ops\n", pid, out.Work[pid])
		}
	}

	// Election across many rounds: which pids win how often? (First movers
	// win; under a fair random schedule every pid has a real shot.) The
	// rounds are independent executions, so they run concurrently on
	// modcon.Trials — the win tallies merge in round order and are the same
	// for any worker count.
	wins := make([]int, n)
	const rounds = 200
	_, err = modcon.Trials(rounds,
		func(ctx context.Context, t modcon.Trial) (*modcon.Outcome, error) {
			return cons.Solve(proposals, modcon.NewUniformRandom(), t.Seed,
				modcon.RunConfig{Context: ctx})
		},
		func(_ modcon.Trial, out *modcon.Outcome, rep modcon.TrialReport) {
			if rep.Outcome == modcon.TrialOK {
				wins[int64(out.Value)]++
			}
		},
		modcon.WithSeed(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwins over %d elections: %v\n", rounds, wins)
}
