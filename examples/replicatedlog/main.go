// Replicated log: the workload the consensus literature motivates —
// n replicas receive conflicting client commands and must apply the *same*
// sequence to their state machines.
//
// Each log slot is one independent m-valued consensus instance (the paper's
// objects are one-shot, so a fresh instance per slot is exactly the
// intended usage). Replicas propose whatever command they received locally;
// consensus picks one proposal per slot; every replica applies the agreed
// command. At the end, all replicated key-value stores must be identical —
// and the example verifies they are, under an adversarial scheduler.
package main

import (
	"fmt"
	"log"

	"github.com/modular-consensus/modcon"
)

// Commands are small integers encoding (key, delta) pairs so they fit the
// consensus value domain: command = key*16 + delta, key ∈ [0,4), delta ∈
// [0,16).
const (
	numReplicas = 5
	numSlots    = 8
	domain      = 64 // m: commands are values in [0, 64)
)

type kvStore map[int]int

func (s kvStore) apply(cmd modcon.Value) {
	key := int(cmd) / 16
	delta := int(cmd) % 16
	s[key] += delta
}

func main() {
	// Conflicting client traffic: replica r proposes command (r*7+slot*3)
	// mod domain for each slot — all different, so every slot is contended.
	proposals := make([][]modcon.Value, numSlots)
	for slot := range proposals {
		proposals[slot] = make([]modcon.Value, numReplicas)
		for r := range proposals[slot] {
			proposals[slot][r] = modcon.Value((r*7 + slot*3) % domain)
		}
	}

	stores := make([]kvStore, numReplicas)
	for r := range stores {
		stores[r] = make(kvStore)
	}

	var agreed []modcon.Value
	totalWork := 0
	for slot := 0; slot < numSlots; slot++ {
		// One fresh m-valued consensus instance per log slot, with the
		// Bollobás-optimal ratifier quorums.
		cons, err := modcon.New(numReplicas, domain, modcon.WithScheme(modcon.SchemePool))
		if err != nil {
			log.Fatal(err)
		}
		out, err := cons.Solve(proposals[slot], modcon.NewFirstMoverAttack(), uint64(1000+slot))
		if err != nil {
			log.Fatal(err)
		}
		agreed = append(agreed, out.Value)
		totalWork += out.TotalWork

		// Every replica applies the slot's agreed command.
		for r := range stores {
			stores[r].apply(out.Outputs[r])
		}
	}

	fmt.Println("agreed log:")
	for slot, cmd := range agreed {
		fmt.Printf("  slot %d: cmd %2d (key %d += %d)   proposals were %v\n",
			slot, int64(cmd), int(cmd)/16, int(cmd)%16, proposals[slot])
	}

	// All replicas must now have identical state.
	for r := 1; r < numReplicas; r++ {
		for k, v := range stores[0] {
			if stores[r][k] != v {
				log.Fatalf("replica %d diverged at key %d: %d != %d", r, k, stores[r][k], v)
			}
		}
	}
	fmt.Printf("\nreplicated state (all %d replicas identical): %v\n", numReplicas, stores[0])
	fmt.Printf("total shared-memory operations across %d slots: %d\n", numSlots, totalWork)
}
