package modcon

import (
	"strings"
	"testing"
)

func TestSolveSequence(t *testing.T) {
	cons, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	proposals := [][]Value{
		{1, 2, 3, 4},
		{5, 5, 5, 5},
		{7, 0, 7, 0},
	}
	out, err := cons.SolveSequence(proposals, NewFirstMoverAttack(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Agreed) != 3 {
		t.Fatalf("agreed %v", out.Agreed)
	}
	if out.Agreed[1] != 5 {
		t.Fatalf("unanimous slot agreed %s", out.Agreed[1])
	}
	for slot := range out.Outputs {
		for pid, v := range out.Outputs[slot] {
			if v != out.Agreed[slot] {
				t.Fatalf("slot %d pid %d: %s != %s", slot, pid, v, out.Agreed[slot])
			}
		}
	}
	if out.TotalWork <= 0 {
		t.Fatal("no work recorded")
	}
}

func TestSolveSequenceBroadcastProposals(t *testing.T) {
	cons, err := NewBinary(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cons.SolveSequence([][]Value{{1}, {0}}, NewUniformRandom(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Agreed[0] != 1 || out.Agreed[1] != 0 {
		t.Fatalf("agreed %v", out.Agreed)
	}
}

func TestSolveSequenceValidation(t *testing.T) {
	cons, err := NewBinary(2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cons.SolveSequence([][]Value{{0, 9}}, NewRoundRobin(), 1)
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("err = %v", err)
	}
	if _, err := cons.SolveSequence(nil, NewRoundRobin(), 1); err == nil {
		t.Fatal("expected error for no slots")
	}
}

func TestSolveSequenceCrashes(t *testing.T) {
	cons, err := NewBinary(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cons.SolveSequence([][]Value{{0, 1, 0}, {1, 0, 1}}, NewUniformRandom(), 4,
		RunConfig{CrashAfter: map[int]int{0: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed[0] {
		t.Fatal("crash not applied")
	}
	for slot := range out.Outputs {
		if out.Outputs[slot][1].IsNone() || out.Outputs[slot][2].IsNone() {
			t.Fatalf("survivor undecided in slot %d", slot)
		}
	}
}
