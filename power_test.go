package modcon

import (
	"errors"
	"testing"
)

// attackCatalog lists every attack scheduler with its declared minimum
// power class, for the MinPower-enforcement table tests.
func attackCatalog() []struct {
	name string
	mk   func() Scheduler
	min  Power
} {
	return []struct {
		name string
		mk   func() Scheduler
		min  Power
	}{
		{"split-vote", func() Scheduler { return NewSplitVote() }, ValueOblivious},
		{"stale-read-attack", func() Scheduler { return NewStaleReadAttack() }, ValueOblivious},
		{"first-mover-attack", func() Scheduler { return NewFirstMoverAttack() }, LocationOblivious},
		{"eager-write-attack", func() Scheduler { return NewEagerWriteAttack() }, LocationOblivious},
		{"adaptive-spoiler", func() Scheduler { return NewAdaptiveSpoiler() }, Adaptive},
	}
}

// TestAttackMinPowerRejection asserts every attack scheduler is rejected
// with the typed ErrBadOption under every power cap below its declared
// minimum — on the Sim backend via both the RunConfig.Power and the
// WithPower paths — and accepted (running to a safe decision) at or above
// it. On Live the cap itself is rejected with ErrOptionUnsupported: that
// backend has no adversary whose class could be capped.
func TestAttackMinPowerRejection(t *testing.T) {
	c, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Value{0, 1, 1, 0}
	for _, att := range attackCatalog() {
		for p := Oblivious; p <= Adaptive; p++ {
			_, err := c.Solve(inputs, att.mk(), 7, RunConfig{Power: p})
			if p < att.min {
				if !errors.Is(err, ErrBadOption) {
					t.Errorf("%s under %s cap: err = %v, want ErrBadOption", att.name, p, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s under %s cap: unexpected error %v", att.name, p, err)
			}
		}
	}
}

// TestAttackMinPowerRejectionRunPath drives the same enforcement through the
// functional-option API (WithPower + WithScheduler on Run).
func TestAttackMinPowerRejectionRunPath(t *testing.T) {
	for _, att := range attackCatalog() {
		for p := Oblivious; p < att.min; p++ {
			file := NewRegisters()
			r, err := NewRatifier(file, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			_, err = Run(r,
				WithRegisters(file), WithN(4), WithInputs(1),
				WithScheduler(att.mk()), WithPower(p), WithSeed(3))
			if !errors.Is(err, ErrBadOption) {
				t.Errorf("%s under %s cap via WithPower: err = %v, want ErrBadOption", att.name, p, err)
			}
		}
	}
}

// TestPowerCapLiveUnsupported: the live backend rejects any power cap with
// ErrOptionUnsupported (with or without the — equally unsupported —
// scheduler).
func TestPowerCapLiveUnsupported(t *testing.T) {
	c, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Value{0, 1, 1, 0}
	for p := Oblivious; p <= Adaptive; p++ {
		if _, err := c.Solve(inputs, nil, 7, RunConfig{Backend: Live, Power: p}); !errors.Is(err, ErrOptionUnsupported) {
			t.Errorf("live cap %s: err = %v, want ErrOptionUnsupported", p, err)
		}
	}
	// A capped scheduler on live is doubly unsupported; the typed sentinel
	// must still be ErrOptionUnsupported, never a panic or ErrBadOption.
	for _, att := range attackCatalog() {
		if _, err := c.Solve(inputs, att.mk(), 7, RunConfig{Backend: Live, Power: att.min}); !errors.Is(err, ErrOptionUnsupported) {
			t.Errorf("live %s with cap: err = %v, want ErrOptionUnsupported", att.name, err)
		}
	}
}

// TestPowerCapValidation: out-of-range caps are ErrBadOption; a cap equal to
// or above the scheduler's class is not an error; the zero value means no
// cap.
func TestPowerCapValidation(t *testing.T) {
	c, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Value{0, 1, 1, 0}
	if _, err := c.Solve(inputs, NewRoundRobin(), 7, RunConfig{Power: Power(99)}); !errors.Is(err, ErrBadOption) {
		t.Errorf("out-of-range cap: err = %v, want ErrBadOption", err)
	}
	if _, err := c.Solve(inputs, NewRoundRobin(), 7, RunConfig{Power: Adaptive}); err != nil {
		t.Errorf("oblivious scheduler under adaptive cap: %v", err)
	}
	if _, err := c.Solve(inputs, NewAdaptiveSpoiler(), 7); err != nil {
		t.Errorf("no cap: %v", err)
	}
}

// TestSearchedSchedulerOption: WithSearchedScheduler accepts a canonical
// parametric config (running it to a safe decision), rejects malformed ones
// with ErrBadOption at run-build time, and NewSearchedScheduler exposes the
// same codec as a factory.
func TestSearchedSchedulerOption(t *testing.T) {
	c, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	const config = "adv:base=rr;rule:when=prob-pending,do=hold-prob;rule:when=always,do=fire-prob"
	s, err := NewSearchedScheduler(config)
	if err != nil {
		t.Fatal(err)
	}
	if s.MinPower() != ValueOblivious {
		t.Fatalf("searched scheduler MinPower = %s, want value-oblivious", s.MinPower())
	}
	out, err := c.Solve([]Value{0, 1, 1, 0}, s, 7)
	if err != nil {
		t.Fatalf("Solve under searched scheduler: %v", err)
	}
	if out.Violation != nil {
		t.Fatalf("violation: %v", out.Violation)
	}
	if _, err := NewSearchedScheduler("adv:base=bogus"); !errors.Is(err, ErrBadOption) {
		t.Errorf("bad config factory err = %v, want ErrBadOption", err)
	}

	file := NewRegisters()
	r, err := NewRatifier(file, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(r,
		WithRegisters(file), WithN(4), WithInputs(1),
		WithSearchedScheduler(config), WithSeed(3))
	if err != nil {
		t.Fatalf("Run with searched scheduler: %v", err)
	}
	for pid, d := range run.Decisions {
		if !d.Decided || d.V != 1 {
			t.Fatalf("pid %d decision %s", pid, d)
		}
	}
	_, err = Run(r,
		WithRegisters(file), WithN(4), WithInputs(1),
		WithSearchedScheduler("adv:nope"), WithSeed(3))
	if !errors.Is(err, ErrBadOption) {
		t.Errorf("malformed searched config err = %v, want ErrBadOption", err)
	}
}
