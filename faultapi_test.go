package modcon

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultPlanParseRoundTrip(t *testing.T) {
	p, err := ParseFaults("crash:pid=0,after=5;losecoin:p=0.25;stall:after=2")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseFaults(p.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.String(), err)
	}
	if p.String() != q.String() {
		t.Fatalf("round trip: %q != %q", p.String(), q.String())
	}
}

// TestSolveWithCrashFaults: planned crashes through the public RunConfig, on
// both backends — survivors must still agree.
func TestSolveWithCrashFaults(t *testing.T) {
	cons, err := NewBinary(4, WithFallback(true))
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Value{0, 1, 1, 0}
	// Threshold 2 is below any deciding path's op count, so the crash always
	// lands before pid 0 can decide — on either backend, whatever the
	// interleaving.
	plan := Faults(CrashFault(0, 2))
	for _, tc := range []struct {
		name string
		rc   RunConfig
		s    Scheduler
	}{
		{"sim", RunConfig{Faults: plan}, NewUniformRandom()},
		{"live", RunConfig{Backend: Live, Faults: plan}, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := cons.Solve(inputs, tc.s, 5, tc.rc)
			if err != nil {
				t.Fatal(err)
			}
			if out.Decided[0] {
				t.Fatal("crashed process decided")
			}
			if out.CutShort() {
				t.Fatal("no survivor decided")
			}
			if out.SafetyViolation() != nil {
				t.Fatalf("violation: %v", out.SafetyViolation())
			}
		})
	}
}

// TestTrialsRobustWatchdog: the public acceptance path — a stall-everyone
// plan livelocks each trial; the watchdog kills them as timeouts and the
// sweep completes, on both backends.
func TestTrialsRobustWatchdog(t *testing.T) {
	cons, err := NewBinary(4, WithFallback(true))
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Value{0, 1, 1, 0}
	plan := Faults(StallFault(AllProcs, 2))
	for _, tc := range []struct {
		name string
		rc   func(ctx context.Context) RunConfig
		s    func() Scheduler
	}{
		{"sim",
			func(ctx context.Context) RunConfig { return RunConfig{Faults: plan, Context: ctx} },
			func() Scheduler { return NewUniformRandom() }},
		{"live",
			func(ctx context.Context) RunConfig { return RunConfig{Backend: Live, Faults: plan, Context: ctx} },
			func() Scheduler { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			report, err := TrialsRobust(2,
				func(ctx context.Context, tr Trial) (*Outcome, error) {
					return cons.Solve(inputs, tc.s(), tr.Seed, tc.rc(ctx))
				},
				nil,
				WithTrialDeadline(100*time.Millisecond), WithSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			if report.Trials != 2 || report.Count(TrialTimeout) != 2 {
				t.Fatalf("report %s, want timeout=2", report)
			}
			for _, rep := range report.Reports {
				if !errors.Is(rep.Err, ErrTrialDeadline) {
					t.Fatalf("trial %d err = %v, want ErrTrialDeadline", rep.Trial.Index, rep.Err)
				}
			}
		})
	}
}

// TestTrialsRobustClassifiesCrashedShort: crashing everyone gives a
// completed run with no deciders.
func TestTrialsRobustClassifiesCrashedShort(t *testing.T) {
	cons, err := NewBinary(4, WithFallback(true))
	if err != nil {
		t.Fatal(err)
	}
	report, err := TrialsRobust(3,
		func(ctx context.Context, tr Trial) (*Outcome, error) {
			return cons.Solve([]Value{0, 1, 1, 0}, NewUniformRandom(), tr.Seed,
				RunConfig{Faults: Faults(CrashFault(AllProcs, 2))})
		},
		nil, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Count(TrialCrashedShort); got != 3 {
		t.Fatalf("report %s, want crashed-short=3", report)
	}
}

// TestSolveLoseCoinStillSafe: heavy coin loss slows the race but can never
// break agreement.
func TestSolveLoseCoinStillSafe(t *testing.T) {
	cons, err := NewBinary(4, WithFallback(true))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		out, err := cons.Solve([]Value{0, 1, 1, 0}, NewUniformRandom(), seed,
			RunConfig{Faults: Faults(LoseCoinFault(AllProcs, 3, 4))})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.CutShort() {
			t.Fatalf("seed %d: nobody decided", seed)
		}
	}
}
