package modcon

// Public surface of the workload plane: declarative open-loop load specs,
// versioned trace record/replay, and the saturation metrics they derive.
// The machinery lives in internal/workload; this file re-exports the types
// and wires them into Trials through three options:
//
//	spec, _ := modcon.ParseWorkload("poisson:rate=2000;serve:servers=4")
//	var trace modcon.WorkloadTrace
//	report, err := modcon.Trials(1000, run, merge,
//	    modcon.WithSeed(7),
//	    modcon.WithWorkload(spec),        // admit trials at Poisson arrivals
//	    modcon.WithTraceRecord(&trace))   // record what actually ran
//	// ... later, anywhere:
//	report2, err := modcon.Trials(1000, run, merge,
//	    modcon.WithTraceReplay(&trace))   // re-run and verify bit-identity
//
// Replay re-executes the sweep from the trace's seed and verifies every
// trial's measured work against the recording — a divergence is a hard
// error (ErrTraceDiverged), which is what makes a recorded trace a
// portable, checkable artifact rather than a log.

import (
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/workload"
)

// Workload types, re-exported from the internal workload plane.
type (
	// WorkloadSpec is a validated, declarative load description: an
	// arrival process (poisson, burst, steady, periods, or a closed
	// cohort) plus an optional virtual service model. Build one with
	// ParseWorkload or as a literal (then Validate); its String method
	// renders the canonical grammar form.
	WorkloadSpec = workload.Spec
	// WorkloadTrace is a versioned (tracev1) recording of an executed
	// workload: the spec, the root seed, and per-trial arrival times and
	// measured step demands. Traces encode to a stable text format,
	// merge exactly across shards, and replay bit-identically.
	WorkloadTrace = workload.Trace
	// WorkloadMetrics summarizes a served workload in virtual time:
	// offered vs achieved decisions/sec, makespan, and the latency
	// distribution (a Hist, in microseconds).
	WorkloadMetrics = workload.Metrics
	// Metered is implemented by trial results that carry work accounting
	// (ObjectRun, ProtocolRun); the workload plane reads per-trial step
	// demands through it.
	Metered = harness.Metered
)

// ErrTraceDiverged marks a replayed sweep whose measured per-trial work
// differs from the trace it was replaying — the replay contract's hard
// failure. Branch with errors.Is.
var ErrTraceDiverged = errors.New("modcon: trace replay diverged from recording")

// ParseWorkload parses a workload spec from its canonical grammar, e.g.
//
//	ParseWorkload("poisson:rate=2000")
//	ParseWorkload("burst:rate=8000,on=50ms,off=150ms;serve:servers=4")
//	ParseWorkload("closed:clients=16,think=2ms")
//
// An empty string parses to (nil, nil) — no workload. Errors wrap
// ErrBadOption.
func ParseWorkload(text string) (*WorkloadSpec, error) {
	spec, err := workload.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrBadOption)
	}
	return spec, nil
}

// WithWorkload runs a Trials sweep open-loop: trial i is admitted at the
// i-th arrival of the spec's process (generated deterministically from the
// sweep's root seed), in arrival order, rather than as fast as workers
// free up. Admission changes only when trials start — results and
// aggregates stay bit-identical to the closed-loop sweep at any worker
// count. Closed (cohort) specs admit trials normally; their pacing lives
// entirely in the virtual service model. A nil spec is a no-op. Run,
// RunProtocol, and the deprecated TrialsStrict reject workload options.
func WithWorkload(spec *WorkloadSpec) RunOption {
	return runOptionFunc(func(c *runConfig) { c.workloadSpec = spec })
}

// WithTraceRecord records the sweep into t: after the sweep completes, t
// holds the workload spec, the root seed, and every trial's arrival time
// and measured step demand — everything needed to replay the sweep
// bit-identically (WithTraceReplay) or to derive its saturation metrics
// (WorkloadTrace.Serve) without re-running anything. Recording requires
// WithWorkload; a sweep that stops early records nothing and errors.
// Trial results must implement Metered (ObjectRun and ProtocolRun do) for
// their demands to be measured.
func WithTraceRecord(t *WorkloadTrace) RunOption {
	return runOptionFunc(func(c *runConfig) { c.traceRecord = t })
}

// WithTraceReplay re-runs a recorded workload: the sweep takes its seed,
// trial count, and arrival schedule from the trace, and after the sweep
// every trial's measured step demand is verified against the recording —
// any divergence fails the sweep with ErrTraceDiverged. Conflicting
// options (a non-zero WithSeed differing from the trace's, a trial count
// differing from the trace's, or WithWorkload) are rejected with
// ErrBadOption. The trace must be complete (an unsharded recording or an
// exact Merge of shard slices).
func WithTraceReplay(t *WorkloadTrace) RunOption {
	return runOptionFunc(func(c *runConfig) { c.traceReplay = t })
}

// workloadPlan is the resolved open-loop configuration of one Trials
// sweep: the arrival schedule to admit against and, when recording or
// replaying, the demand collector and its post-sweep obligation.
type workloadPlan struct {
	spec     *workload.Spec
	seed     uint64
	trials   int
	arrivals []int64 // admission schedule (nil for closed specs)
	demands  []int64 // per-trial measured steps, filled by the merge hook
	record   *workload.Trace
	replay   *workload.Trace
}

// workloadOptionsSet reports whether any workload-plane option is present
// (used by entry points that do not support them).
func (c *runConfig) workloadOptionsSet() bool {
	return c.workloadSpec != nil || c.traceRecord != nil || c.traceReplay != nil
}

// workloadPlan resolves the workload options against the sweep's shape,
// validating conflicts up front. It returns nil when no workload option is
// in play. On replay it adopts the trace's seed into the runConfig so the
// sweep derives identical per-trial seeds.
func (c *runConfig) workloadPlan(trials int) (*workloadPlan, error) {
	if !c.workloadOptionsSet() {
		return nil, nil
	}
	p := &workloadPlan{record: c.traceRecord, replay: c.traceReplay}
	switch {
	case p.replay != nil:
		if c.workloadSpec != nil {
			return nil, fmt.Errorf("WithTraceReplay and WithWorkload conflict (the trace carries its own spec): %w", ErrBadOption)
		}
		if p.record != nil {
			return nil, fmt.Errorf("WithTraceReplay and WithTraceRecord conflict (a replay verifies, it does not re-record): %w", ErrBadOption)
		}
		if !p.replay.Complete() {
			return nil, fmt.Errorf("WithTraceReplay needs a complete trace, got shard slice [%d,%d) of %d trials (Merge the slices first): %w",
				p.replay.Lo, p.replay.Hi, p.replay.Trials, ErrBadOption)
		}
		spec, err := p.replay.ParseSpec()
		if err != nil {
			return nil, fmt.Errorf("WithTraceReplay: %v: %w", err, ErrBadOption)
		}
		if trials != p.replay.Trials {
			return nil, fmt.Errorf("WithTraceReplay: trace records %d trials, sweep asked for %d: %w", p.replay.Trials, trials, ErrBadOption)
		}
		if c.seed != 0 && c.seed != p.replay.Seed {
			return nil, fmt.Errorf("WithTraceReplay: trace was recorded with seed %d, WithSeed(%d) conflicts: %w", p.replay.Seed, c.seed, ErrBadOption)
		}
		c.seed = p.replay.Seed
		p.spec, p.seed, p.trials = spec, p.replay.Seed, trials
		if spec.Open() {
			p.arrivals = p.replay.Arrivals()
		}
	case c.workloadSpec != nil:
		if err := c.workloadSpec.Validate(); err != nil {
			return nil, fmt.Errorf("WithWorkload: %v: %w", err, ErrBadOption)
		}
		p.spec, p.seed, p.trials = c.workloadSpec, c.seed, trials
		if p.spec.Open() {
			arrivals, err := p.spec.Schedule(p.seed, trials)
			if err != nil {
				return nil, fmt.Errorf("WithWorkload: %v: %w", err, ErrBadOption)
			}
			p.arrivals = arrivals
		}
	default: // record without a workload: nothing to record arrivals from
		return nil, fmt.Errorf("WithTraceRecord requires WithWorkload (a trace records a workload's execution): %w", ErrBadOption)
	}
	if p.record != nil || p.replay != nil {
		p.demands = make([]int64, trials)
	}
	return p, nil
}

// observe records one merged trial's measured work into the demand vector.
func (p *workloadPlan) observe(index int, result any) {
	if p == nil || p.demands == nil {
		return
	}
	if m, ok := result.(Metered); ok {
		steps, _ := m.SweepCost()
		p.demands[index] = int64(steps)
	}
}

// finish discharges the plan's post-sweep obligation: fill the recording,
// or verify the replay. It requires the sweep to have classified every
// trial — a partial sweep records nothing and verifies nothing.
func (p *workloadPlan) finish(report *SweepReport) error {
	if p == nil || p.demands == nil {
		return nil
	}
	if report.StoppedEarly || report.Trials != p.trials {
		return fmt.Errorf("modcon: workload trace: sweep classified %d of %d trials (stopped early); trace not usable: %w",
			report.Trials, p.trials, ErrBadOption)
	}
	if p.replay != nil {
		if err := p.replay.Verify(p.demands); err != nil {
			return fmt.Errorf("%v: %w", err, ErrTraceDiverged)
		}
		return nil
	}
	arrivals := p.arrivals
	if !p.spec.Open() {
		// Closed cohort: issue times come from the virtual service model.
		served, err := p.spec.Serve(nil, p.demands)
		if err != nil {
			return fmt.Errorf("modcon: workload trace: %v: %w", err, ErrBadOption)
		}
		arrivals = served.Arrivals
	}
	tr, err := workload.Record(p.spec, p.seed, p.trials, 0, p.trials, arrivals[:p.trials], p.demands)
	if err != nil {
		return fmt.Errorf("modcon: workload trace: %v: %w", err, ErrBadOption)
	}
	*p.record = *tr
	return nil
}
