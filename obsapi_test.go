package modcon

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// obsSweep runs a small consensus sweep with the observability options
// attached and returns the full JSON encodings of both histograms plus the
// snapshots the sink collected.
func obsSweep(t *testing.T, workers int) (stepsJSON, workJSON string, snaps []ProgressSnapshot) {
	t.Helper()
	cons, err := NewBinary(6)
	if err != nil {
		t.Fatal(err)
	}
	var steps, work Hist
	sink := &collectSink{}
	meter := &Meter{}
	_, err = Trials(16, func(ctx context.Context, tr Trial) (*ProtocolRun, error) {
		file, proto, err := cons.Build()
		if err != nil {
			return nil, err
		}
		inputs := make([]Value, 6)
		for p := range inputs {
			inputs[p] = Value((p + tr.Index) % 2)
		}
		return RunProtocol(proto,
			WithRegisters(file), WithN(6), WithInputs(inputs...),
			WithScheduler(NewUniformRandom()), WithSeed(tr.Seed),
			WithContext(ctx), WithMeter(meter))
	}, nil,
		WithSeed(21), WithWorkers(workers),
		WithHistograms(&steps, &work),
		WithProgressSink(sink, 0),
		WithMeter(meter))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := meter.Steps(), steps.Sum(); got != want {
		t.Fatalf("meter counted %d steps, histogram sum %d", got, want)
	}
	sj, err := json.Marshal(&steps)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(&work)
	if err != nil {
		t.Fatal(err)
	}
	return string(sj), string(wj), sink.snaps
}

// collectSink records every snapshot for inspection.
type collectSink struct{ snaps []ProgressSnapshot }

func (s *collectSink) Emit(p ProgressSnapshot) { s.snaps = append(s.snaps, p) }

// TestTrialsObservability pins the public face of the obs plane: histograms
// are populated and bit-identical across worker counts, the progress sink
// sees every merge plus a final snapshot, and an attached meter counts every
// executed operation.
func TestTrialsObservability(t *testing.T) {
	refSteps, refWork, snaps := obsSweep(t, 1)
	if refSteps == "" || refWork == "" {
		t.Fatal("empty histograms")
	}
	if len(snaps) != 17 { // 16 merges + 1 final
		t.Fatalf("got %d snapshots, want 17", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Final || last.Done != 16 || last.Total != 16 {
		t.Fatalf("final snapshot = %+v", last)
	}
	for _, w := range []int{4, 16} {
		sj, wj, _ := obsSweep(t, w)
		if sj != refSteps {
			t.Errorf("workers=%d steps histogram diverged:\n%s\n%s", w, sj, refSteps)
		}
		if wj != refWork {
			t.Errorf("workers=%d work histogram diverged:\n%s\n%s", w, wj, refWork)
		}
	}
}

// TestProgressSinkFormats exercises the built-in text and JSON-lines sinks
// through the re-exported constructors.
func TestProgressSinkFormats(t *testing.T) {
	var text, lines strings.Builder
	snap := ProgressSnapshot{Done: 3, Total: 8, Steps: 120, Final: false}
	TextProgress(&text).Emit(snap)
	if !strings.Contains(text.String(), "trials 3/8") {
		t.Errorf("text sink output %q", text.String())
	}
	JSONProgress(&lines).Emit(snap)
	var decoded map[string]any
	if err := json.Unmarshal([]byte(lines.String()), &decoded); err != nil {
		t.Fatalf("json sink output %q: %v", lines.String(), err)
	}
	if decoded["done"] != float64(3) || decoded["total"] != float64(8) {
		t.Errorf("json sink decoded %v", decoded)
	}
}
