package modcon

import (
	"context"
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sharedcoin"
	"github.com/modular-consensus/modcon/internal/value"
)

// RatifierScheme selects the quorum system of the protocol's ratifiers
// (§6.2 of the paper).
type RatifierScheme int

const (
	// SchemeAuto picks Binary for m = 2 and Pool otherwise.
	SchemeAuto RatifierScheme = iota
	// SchemeBinary is the 3-register binary ratifier (m = 2 only).
	SchemeBinary
	// SchemePool is the Bollobás-optimal scheme: lg m + Θ(log log m)
	// registers.
	SchemePool
	// SchemeBitVector is the simpler 2⌈lg m⌉+1-register scheme.
	SchemeBitVector
	// SchemeCollect is the cheap-collect ratifier (4 ops with cheap
	// collects).
	SchemeCollect
)

// ConciliatorKind selects the protocol's conciliator family (§5).
type ConciliatorKind int

const (
	// ConciliatorImpatient is the paper's ImpatientFirstMoverConciliator:
	// O(log n) individual work, O(n) expected total work (Theorem 7).
	ConciliatorImpatient ConciliatorKind = iota
	// ConciliatorConstantRate is the Chor–Israeli–Li / Cheung baseline with
	// fixed 1/n write probability: Θ(n) individual work.
	ConciliatorConstantRate
	// ConciliatorSharedCoin builds conciliators from voting weak shared
	// coins (§5.1; binary only).
	ConciliatorSharedCoin
	// ConciliatorNone omits conciliators entirely: the ratifier-only
	// protocol R of §4.2, which requires a noisy or priority scheduler to
	// terminate.
	ConciliatorNone
)

// Option configures a Consensus spec.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

type config struct {
	scheme        RatifierScheme
	conciliator   ConciliatorKind
	fastPath      bool
	stages        int
	fallback      bool
	detectWrites  bool
	growth        conciliator.Growth
	coinThreshold int
}

// WithScheme selects the ratifier quorum scheme.
func WithScheme(s RatifierScheme) Option {
	return optionFunc(func(c *config) { c.scheme = s })
}

// WithConciliator selects the conciliator family.
func WithConciliator(k ConciliatorKind) Option {
	return optionFunc(func(c *config) { c.conciliator = k })
}

// WithFastPath toggles the R₋₁; R₀ prefix (§4.1.1); default on.
func WithFastPath(on bool) Option {
	return optionFunc(func(c *config) { c.fastPath = on })
}

// WithStages truncates the chain after k (Cᵢ; Rᵢ) stages (§4.1.2).
func WithStages(k int) Option {
	return optionFunc(func(c *config) { c.stages = k })
}

// WithFallback appends the bounded-space CIL consensus K after the last
// stage, making the protocol a consensus object for any Stages value.
func WithFallback(on bool) Option {
	return optionFunc(func(c *config) { c.fallback = on })
}

// WithWriteDetection lets conciliators return immediately after a
// probabilistic write they observe to succeed (footnote 2 ablation).
func WithWriteDetection(on bool) Option {
	return optionFunc(func(c *config) { c.detectWrites = on })
}

// WithCoinThreshold overrides the voting shared coin's total-vote threshold
// (default n²); only meaningful with ConciliatorSharedCoin.
func WithCoinThreshold(votes int) Option {
	return optionFunc(func(c *config) { c.coinThreshold = votes })
}

// Consensus is a reusable specification of a consensus protocol for n
// processes and m values. Every Solve call builds a fresh instance (the
// underlying objects are one-shot) and runs one simulated execution.
type Consensus struct {
	n, m int
	cfg  config
}

// New returns a consensus spec for n processes over inputs {0, …, m-1}
// assembled per the paper's recipe: fast-path ratifier pair, then
// alternating impatient conciliators and quorum ratifiers.
func New(n, m int, opts ...Option) (*Consensus, error) {
	if n <= 0 {
		return nil, fmt.Errorf("modcon: n=%d must be positive", n)
	}
	if m < 2 {
		return nil, fmt.Errorf("modcon: m=%d must be at least 2", m)
	}
	cfg := config{
		scheme:      SchemeAuto,
		conciliator: ConciliatorImpatient,
		fastPath:    true,
		growth:      conciliator.GrowthDoubling,
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.scheme == SchemeBinary && m != 2 {
		return nil, fmt.Errorf("modcon: binary scheme supports m=2, got m=%d", m)
	}
	if cfg.conciliator == ConciliatorSharedCoin && m != 2 {
		return nil, fmt.Errorf("modcon: shared-coin conciliators support m=2, got m=%d", m)
	}
	if cfg.conciliator == ConciliatorNone && !cfg.fallback && cfg.stages == 0 {
		return nil, errors.New("modcon: ratifier-only protocol needs explicit Stages or Fallback")
	}
	return &Consensus{n: n, m: m, cfg: cfg}, nil
}

// NewBinary is shorthand for New(n, 2, opts...).
func NewBinary(n int, opts ...Option) (*Consensus, error) {
	return New(n, 2, opts...)
}

// N returns the process count.
func (c *Consensus) N() int { return c.n }

// M returns the value-domain size.
func (c *Consensus) M() int { return c.m }

// Build constructs a fresh one-shot protocol instance and the register file
// it lives in. Most callers want Solve; Build exists for embedding the
// protocol in larger simulated systems.
func (c *Consensus) Build() (*Registers, *core.Protocol, error) {
	file := register.NewFile()

	newRatifier := func(f *register.File, index int) core.Object {
		switch c.cfg.scheme {
		case SchemeBinary:
			return ratifier.NewBinary(f, index)
		case SchemePool:
			return ratifier.NewPool(f, c.m, index)
		case SchemeBitVector:
			return ratifier.NewBitVector(f, c.m, index)
		case SchemeCollect:
			return ratifier.NewCollect(f, c.n, index)
		default: // SchemeAuto
			if c.m == 2 {
				return ratifier.NewBinary(f, index)
			}
			return ratifier.NewPool(f, c.m, index)
		}
	}

	var newConciliator core.Builder
	switch c.cfg.conciliator {
	case ConciliatorNone:
		newConciliator = nil
	case ConciliatorSharedCoin:
		newConciliator = func(f *register.File, index int) core.Object {
			coin := sharedcoin.NewVoting(f, c.n, index)
			if c.cfg.coinThreshold > 0 {
				coin.Threshold = c.cfg.coinThreshold
			}
			return conciliator.NewFromCoin(f, coin, index)
		}
	default:
		growth := conciliator.GrowthDoubling
		if c.cfg.conciliator == ConciliatorConstantRate {
			growth = conciliator.GrowthConstant
		}
		newConciliator = func(f *register.File, index int) core.Object {
			imp := conciliator.NewImpatient(f, c.n, index)
			imp.Growth = growth
			imp.DetectSuccess = c.cfg.detectWrites
			return imp
		}
	}

	opts := core.Options{
		N:              c.n,
		File:           file,
		NewRatifier:    newRatifier,
		NewConciliator: newConciliator,
		Stages:         c.cfg.stages,
		FastPath:       c.cfg.fastPath,
	}
	if c.cfg.fallback {
		opts.Fallback = fallback.New(file, c.n, 0)
	}
	proto, err := core.NewProtocol(opts)
	if err != nil {
		return nil, nil, err
	}
	return file, proto, nil
}

// RunConfig tunes a single Solve execution.
type RunConfig struct {
	// Backend selects the execution model (Sim, the default, or Live). On
	// Live the scheduler argument must be nil and Traced must be false.
	Backend Backend
	// Traced records the full execution in Outcome.Trace (Sim only).
	Traced bool
	// CheapCollect enables the O(1)-collect cost model (needed by
	// SchemeCollect to hit its 4-op bound).
	CheapCollect bool
	// Registers selects the register consistency model (zero value Atomic;
	// see RegisterModel). Interposed is Sim-only.
	Registers RegisterModel
	// Power caps the adversary information class (zero value: no cap, the
	// scheduler runs at its declared MinPower). A scheduler whose MinPower
	// exceeds the cap is rejected with ErrBadOption; Live rejects any cap
	// with ErrOptionUnsupported. See WithPower for the option-form knob.
	Power Power
	// CrashAfter crashes pid after its given operation count (legacy sugar
	// for a plan of crash faults; merged with Faults, smaller threshold
	// wins).
	CrashAfter map[int]int
	// Faults is the typed fault plan: crashes, stalls, per-op delay
	// jitter, lost probabilistic-write coins (see Faults, ParseFaults).
	// Stall faults require Context.
	Faults *FaultPlan
	// MaxSteps bounds total work (0 = simulator default).
	MaxSteps int
	// Context, if non-nil, cancels the execution between simulated steps.
	Context context.Context
}

// Outcome reports one consensus execution.
type Outcome struct {
	// Value is the agreed decision value (of the processes that decided).
	Value Value
	// Outputs holds the per-process outputs (None if crashed/undecided).
	Outputs []Value
	// Decided reports which processes decided.
	Decided []bool
	// Stage is the per-process deciding stage: 0 = fast path, i ≥ 1 = stage
	// (Cᵢ; Rᵢ), -1 = undecided or decided in the fallback.
	Stage []int
	// FellBack reports which processes decided in the fallback object.
	FellBack []bool
	// TotalWork and Work are the paper's cost measures.
	TotalWork int
	Work      []int
	// Violation is the safety violation Solve detected (also returned as
	// its error); nil for safe runs. The field exists so TrialsRobust can
	// classify a trial as violated rather than retrying it as an unknown
	// failure.
	Violation error
	// Trace is non-nil when RunConfig.Traced was set.
	Trace *Trace
}

// SafetyViolation reports the run's safety violation (nil if safe); the
// resilient trial engine uses it to classify trials. Nil-receiver-safe:
// trials whose Solve failed outright hand the classifier a nil outcome.
func (o *Outcome) SafetyViolation() error {
	if o == nil {
		return nil
	}
	return o.Violation
}

// CutShort reports that no process decided — an execution cut down by
// crashes or the step budget before the protocol could finish.
func (o *Outcome) CutShort() bool {
	if o == nil {
		return true
	}
	for _, d := range o.Decided {
		if d {
			return false
		}
	}
	return true
}

// SweepCost implements Metered: an Outcome contributes its total work and
// max individual work to sweep histograms, progress accounting, and the
// workload plane's per-trial demand measurements. Nil-receiver-safe.
func (o *Outcome) SweepCost() (steps, work int) {
	if o == nil {
		return 0, 0
	}
	return o.TotalWork, o.MaxWork()
}

// MaxWork returns the individual work (max over processes).
func (o *Outcome) MaxWork() int {
	m := 0
	for _, w := range o.Work {
		if w > m {
			m = w
		}
	}
	return m
}

// Solve runs one execution with the given per-process inputs (len n, or a
// single value for all) under the adversary s — or, with
// RunConfig.Backend set to Live, under real goroutine concurrency (pass a
// nil scheduler there; the Go scheduler is the adversary). It returns an
// error for malformed configurations or step-limit exhaustion, and it
// *verifies agreement and validity* before returning: a safety violation —
// which would indicate a bug, not bad luck — is reported as an error.
func (c *Consensus) Solve(inputs []Value, s Scheduler, seed uint64, run ...RunConfig) (*Outcome, error) {
	var rc RunConfig
	switch len(run) {
	case 0:
	case 1:
		rc = run[0]
	default:
		return nil, errors.New("modcon: pass at most one RunConfig")
	}
	if err := rc.Backend.validateOptions(s, rc.Power, rc.Traced, rc.Registers); err != nil {
		return nil, err
	}
	be, err := rc.Backend.impl()
	if err != nil {
		return nil, err
	}
	for _, v := range inputs {
		if v.IsNone() || v < 0 || int64(v) >= int64(c.m) {
			return nil, fmt.Errorf("modcon: input %s outside [0, %d)", v, c.m)
		}
	}
	file, proto, err := c.Build()
	if err != nil {
		return nil, err
	}
	pr, err := harness.RunProtocol(proto, harness.ObjectConfig{
		N: c.n, File: file, Inputs: inputs, Backend: be, Scheduler: s, Seed: seed,
		Traced: rc.Traced, CheapCollect: rc.CheapCollect, Registers: rc.Registers,
		CrashAfter: rc.CrashAfter, Faults: rc.Faults,
		MaxSteps: rc.MaxSteps, Context: rc.Context,
	})
	if err != nil {
		return nil, err
	}

	out := &Outcome{
		Outputs:   pr.Result.Outputs,
		Decided:   pr.Decided,
		Stage:     make([]int, c.n),
		FellBack:  make([]bool, c.n),
		TotalWork: pr.Result.TotalWork,
		Work:      pr.Result.Work,
		Violation: pr.Violation,
		Trace:     pr.Trace,
		Value:     None,
	}
	for pid := range out.Stage {
		out.Stage[pid], out.FellBack[pid] = proto.DecidedStage(pid)
	}
	decided := pr.DecidedOutputs()
	if len(decided) > 0 {
		out.Value = decided[0]
	}
	full := inputs
	if len(full) == 1 {
		full = make([]Value, c.n)
		for i := range full {
			full[i] = inputs[0]
		}
	}
	if err := check.Consensus(full, decided); err != nil {
		if out.Violation == nil {
			out.Violation = err
		}
		return out, fmt.Errorf("modcon: SAFETY VIOLATION (bug): %w", err)
	}
	return out, nil
}

// Sweep runs trials independent executions of this consensus spec on the
// parallel trial engine and folds the outcomes, in trial order, through
// merge. Each trial's seed derives from WithSeed's root via TrialSeed, so
// aggregates are bit-identical at any worker count — and at any lane width:
// lane-eligible sweeps (Sim backend, no trace/meter/faults) route whole
// batches of trials through one reusable engine, the throughput path
// WithBatching tunes, while ineligible ones replay per-trial pooled
// sessions.
//
// newSched builds the adversary; it is called once per pooled session (not
// per trial) because schedulers are stateful, which is why Sweep takes a
// factory where Solve takes an instance (WithScheduler is rejected here).
// inputs, if non-nil, supplies each trial's per-process inputs (one per
// process or a single broadcast value), overriding WithInputs; inputs and
// WithInputs must not both be absent.
//
// Like Solve, Sweep verifies agreement and validity: the first trial (by
// index) whose execution violates safety turns into an error after the
// sweep completes, since a violation is a bug, never bad luck.
func (c *Consensus) Sweep(trials int, newSched func() Scheduler, inputs func(t Trial) []Value, merge func(t Trial, o *Outcome), opts ...RunOption) error {
	rc := buildRunConfig(opts)
	if rc.scheduler != nil {
		return fmt.Errorf("modcon: Sweep takes a scheduler factory, not WithScheduler (each pooled session needs its own stateful adversary): %w", ErrBadOption)
	}
	if rc.backend == Sim && newSched == nil {
		return fmt.Errorf("modcon: a scheduler factory is required (the sim backend needs an explicit adversary): %w", ErrBadOption)
	}
	if inputs == nil && len(rc.inputs) == 0 {
		return fmt.Errorf("modcon: WithInputs or a per-trial inputs func is required: %w", ErrBadOption)
	}
	var probe Scheduler
	if newSched != nil {
		probe = newSched()
	}
	if err := rc.backend.validateOptions(probe, rc.power, rc.traced, rc.registers); err != nil {
		return err
	}
	be, err := rc.backend.impl()
	if err != nil {
		return err
	}
	// Surface construction errors here, once, so the per-session Build
	// closure below cannot fail.
	if _, _, err := c.Build(); err != nil {
		return err
	}
	base := rc.inputs
	if len(base) == 0 {
		base = []Value{0} // placeholder; the per-trial hook overrides it
	}
	spec := harness.ProtocolSweep{
		Build: func() (*core.Protocol, harness.ObjectConfig) {
			file, proto, err := c.Build()
			if err != nil {
				panic(err) // unreachable: the pre-flight Build above succeeded
			}
			var sched Scheduler
			if newSched != nil {
				sched = newSched()
			}
			return proto, harness.ObjectConfig{
				N: c.n, File: file, Inputs: base, Backend: be, Scheduler: sched,
				Traced: rc.traced, CheapCollect: rc.cheapCollect, Registers: rc.registers,
				CrashAfter: rc.crashAfter, Faults: rc.faults,
				MaxSteps: rc.maxSteps, Context: rc.ctx, Meter: rc.meter,
			}
		},
		Inputs: inputs,
	}
	var violation error
	violationAt := trials
	err = harness.SweepProtocol(rc.sweep(trials), spec, func(t Trial, run *harness.ProtocolRun) {
		out := &Outcome{
			Outputs:   run.Result.Outputs,
			Decided:   run.Decided,
			Stage:     make([]int, c.n),
			FellBack:  make([]bool, c.n),
			TotalWork: run.Result.TotalWork,
			Work:      run.Result.Work,
			Violation: run.Violation,
			Trace:     run.Trace,
			Value:     None,
		}
		for pid := range out.Stage {
			out.Stage[pid], out.FellBack[pid] = run.DecidedStage(pid)
		}
		if decided := run.DecidedOutputs(); len(decided) > 0 {
			out.Value = decided[0]
		}
		if run.Violation != nil && t.Index < violationAt {
			violation, violationAt = run.Violation, t.Index
		}
		if merge != nil {
			merge(t, out)
		}
	})
	if err != nil {
		return err
	}
	if violation != nil {
		return fmt.Errorf("modcon: SAFETY VIOLATION (bug) in trial %d: %w", violationAt, violation)
	}
	return nil
}

// Verify re-checks an outcome against inputs (exported so examples and
// external harnesses can assert safety themselves).
func Verify(inputs []Value, o *Outcome) error {
	var decided []value.Value
	for pid, d := range o.Decided {
		if d {
			decided = append(decided, o.Outputs[pid])
		}
	}
	return check.Consensus(inputs, decided)
}
